"""Unified query surface: the :class:`QueryBackend` protocol.

Every k-mer matching engine in this repository — the functional Sieve
device, the software baselines (Kraken-, CLARK-, and sorted-list-style
classifiers), the plain :class:`~repro.genomics.database.KmerDatabase`,
and the row-major in-situ baseline — answers the same question: *which
reference taxon, if any, does this k-mer belong to?*  Historically each
engine exposed its own signature (``lookup`` returning ``Optional[int]``
vs ``DeviceResponse``, ``lookup_many(batched=)``, ``match_batch``),
which forced the experiment harness and the classification loop into
per-engine adapters.

This module defines the one surface they all implement now:

``query(kmers, *, batched=True) -> List[BackendResult]``
    The batch query path.  ``batched=False`` asks engines that have a
    distinct scalar protocol (the Sieve device's command-by-command
    replay) to use it; engines without one ignore the flag.
``classify(read) -> ClassificationResult``
    The Figure-2 classification loop over :meth:`query`, shared through
    :class:`QueryBackendBase` so votes are counted one way everywhere.
``capabilities() -> BackendCapabilities``
    Static facts a dispatcher needs: k, canonicalization, natural batch
    size, whether the engine reports simulated device cost.
``stats() -> BackendStats``
    Uniform hit-rate accounting across all engines.

The old names survive as thin shims that emit ``DeprecationWarning``;
lint rule SV006 (``python -m repro.lint``) keeps the repository itself
off them.

This module is a *leaf*: it imports nothing from the rest of the
package at module level, so any engine module can import it without
cycles.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)


class ApiError(ValueError):
    """Raised on malformed protocol-level requests."""


# ---------------------------------------------------------------------------
# Shared result / stats / capabilities types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BackendResult:
    """Answer to one k-mer query, uniform across every backend.

    Software engines fill only the first three fields; the Sieve device
    additionally reports which subarray answered and the micro-events
    (rows activated, ETM flush cycles) the trace-driven performance
    model aggregates.  ``subarray_id is None`` on the device means the
    host-side range index filtered the query without dispatching it.
    """

    query: int
    hit: bool
    payload: Optional[int]
    subarray_id: Optional[int] = None
    rows_activated: int = 0
    etm_flush_cycles: int = 0


@dataclass
class BackendStats:
    """Uniform hit-rate accounting: queries answered and hits among them.

    This is the *one* place hit rate is computed; engines with richer
    internal counters (the device's :class:`~repro.sieve.device.
    DeviceStats`) project down to this shape so every report divides
    the same two numbers the same way.
    """

    queries: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.queries - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0

    def record(self, results: Sequence[BackendResult]) -> None:
        """Fold a query batch's results into the counters."""
        self.queries += len(results)
        self.hits += sum(1 for r in results if r.hit)


@dataclass(frozen=True)
class BackendCapabilities:
    """Static facts a dispatcher needs to drive a backend.

    ``max_batch`` is the engine's *natural* batch granularity (the
    Sieve device's queries-per-group); 0 means the engine has no
    preferred size.  ``simulated_latency`` marks engines whose
    :meth:`QueryBackendBase.batch_cost` prices batches in simulated
    device time rather than returning zero.  ``degraded`` marks an
    engine built (or rebuilt) under an active fault model
    (:mod:`repro.faults`): its answers may be corrupted, and a
    dispatcher should surface that in health reporting.
    """

    name: str
    kind: str
    k: int
    canonical: bool
    batched: bool = True
    max_batch: int = 0
    simulated_latency: bool = False
    degraded: bool = False


# ---------------------------------------------------------------------------
# The protocol
# ---------------------------------------------------------------------------


@runtime_checkable
class QueryBackend(Protocol):
    """Structural type every k-mer matching engine implements."""

    def query(
        self, kmers: Sequence[int], *, batched: bool = True
    ) -> List[BackendResult]:
        """Answer a batch of packed k-mer queries, in request order."""
        ...

    def classify(self, read) -> Any:
        """Classify one read (majority vote over its k-mer hits)."""
        ...

    def capabilities(self) -> BackendCapabilities:
        """Static dispatch facts for this engine."""
        ...

    def stats(self) -> BackendStats:
        """Uniform query/hit accounting since construction."""
        ...


# ---------------------------------------------------------------------------
# Shared implementation mixin
# ---------------------------------------------------------------------------


def classification_from_results(
    read_id: str,
    results: Sequence[BackendResult],
    true_taxon: Optional[int] = None,
):
    """Build a :class:`~repro.baselines.classifier.ClassificationResult`
    from per-k-mer backend results — the one vote-counting path every
    backend's :meth:`~QueryBackend.classify` goes through."""
    from .baselines.classifier import ClassificationResult, majority_vote

    votes: Dict[int, int] = {}
    hits = 0
    for result in results:
        if result.hit and result.payload is not None:
            hits += 1
            votes[result.payload] = votes.get(result.payload, 0) + 1
    return ClassificationResult(
        read_id=read_id,
        taxon=majority_vote(votes),
        votes=votes,
        kmers_total=len(results),
        kmers_hit=hits,
        true_taxon=true_taxon,
    )


class QueryBackendBase:
    """Default ``classify``/``stats``/cost hooks over :meth:`query`.

    Engines subclass this, implement :meth:`query` and
    :meth:`capabilities`, and keep their hit-rate accounting in
    ``self._backend_stats`` (or override :meth:`stats`).
    """

    _backend_stats: BackendStats

    def __init__(self) -> None:
        self._backend_stats = BackendStats()

    def query(
        self, kmers: Sequence[int], *, batched: bool = True
    ) -> List[BackendResult]:
        raise NotImplementedError

    def capabilities(self) -> BackendCapabilities:
        raise NotImplementedError

    def stats(self) -> BackendStats:
        """Point-in-time snapshot (callers can diff across calls)."""
        return BackendStats(
            queries=self._backend_stats.queries,
            hits=self._backend_stats.hits,
        )

    def classify(self, read):
        """Figure 2's loop: query every window, majority-vote the hits."""
        k = self.capabilities().k
        results = self.query(list(read.kmers(k)))
        return classification_from_results(
            read.seq_id, results, true_taxon=read.taxon_id
        )

    def classify_reads(self, reads) -> List[Any]:
        """Classify a read set; returns per-read results."""
        return [self.classify(read) for read in reads]

    # -- simulated-cost hooks (device backends override) ------------------

    def perf_counters(self) -> Dict[str, int]:
        """Monotonic micro-event counters a dispatcher can snapshot
        around a batch to price it; software engines report none."""
        return {}

    def batch_cost(self, delta: Dict[str, int]) -> Tuple[float, float]:
        """(simulated ns, simulated nJ) for a counter delta from
        :meth:`perf_counters`; zero for engines with no device model."""
        return (0.0, 0.0)


class ScalarQueryBackendBase(QueryBackendBase):
    """Backends whose engine is a scalar :meth:`get` probe.

    The software classifiers (hash table, signature index, sorted list)
    answer one k-mer at a time; :meth:`query` is the loop over
    :meth:`get`, with the shared stats accounting.  ``batched`` is
    accepted for protocol uniformity and ignored — there is no
    command-level batch protocol to select.
    """

    def get(self, kmer: int) -> Optional[int]:
        """Taxon payload for one k-mer, or ``None`` (miss)."""
        raise NotImplementedError

    def query(
        self, kmers: Sequence[int], *, batched: bool = True
    ) -> List[BackendResult]:
        results = []
        for kmer in kmers:
            payload = self.get(kmer)
            results.append(
                BackendResult(query=kmer, hit=payload is not None, payload=payload)
            )
        self._backend_stats.record(results)
        return results


# ---------------------------------------------------------------------------
# Deprecation machinery
# ---------------------------------------------------------------------------


def warn_deprecated(old: str, new: str) -> None:
    """Emit the standard shim warning (``stacklevel=3``: the caller of
    the deprecated method, not the shim body)."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead (see docs/PERFORMANCE.md "
        "migration notes)",
        DeprecationWarning,
        stacklevel=3,
    )


def __getattr__(name: str) -> Any:
    # `Classification` is an alias for the shared per-read result type;
    # resolved lazily to keep this module a leaf.
    if name == "Classification":
        from .baselines.classifier import ClassificationResult

        return ClassificationResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ApiError",
    "BackendCapabilities",
    "BackendResult",
    "BackendStats",
    "Classification",
    "QueryBackend",
    "QueryBackendBase",
    "ScalarQueryBackendBase",
    "classification_from_results",
    "warn_deprecated",
]
