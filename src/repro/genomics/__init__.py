"""Genomics substrate: encoding, sequences, I/O, taxonomy, databases,
and synthetic workload generation.

This package is a from-scratch implementation of everything the Sieve
evaluation needs from the bioinformatics side: the NCBI 2-bit base
encoding and k-mer packing, FASTA/FASTQ I/O, a taxonomy tree with LCA,
the reference k-mer database the classifiers and the accelerator load,
and generators for synthetic genomes/read sets standing in for the
paper's MiniKraken / HiSeq / MiSeq / simBA-5 data (see DESIGN.md for the
substitution argument).
"""

from .counting import (
    CountMinSketch,
    CountingError,
    ExactKmerCounter,
    count_reads,
)
from .database import (
    KMER_RECORD_BYTES,
    DatabaseStats,
    KmerDatabase,
    MmapKmerDatabase,
)
from .encoding import (
    BASES,
    BITS_PER_BASE,
    MAX_PACKED_K,
    EncodingError,
    cache_key_kmer,
    cache_key_kmers,
    canonical_kmer,
    canonical_kmers,
    decode_kmer,
    encode_kmer,
    first_diff_base,
    first_diff_bit,
    iter_kmers,
    kmer_bits,
    pack_kmers,
    reverse_complement,
    revcomp_value,
    revcomp_values,
    transpose_kmers,
)
from .fasta import read_fasta, read_fastq, write_fasta, write_fastq
from .sequence import DnaSequence
from .synthetic import (
    TABLE_II_PROFILES,
    ReadProfile,
    SyntheticDataset,
    build_dataset,
    mutate,
    phylogenetic_genomes,
    random_genome,
    simulate_reads,
)
from .taxonomy import ROOT_TAXON, Taxonomy, TaxonomyError, balanced_taxonomy

__all__ = [
    "BASES",
    "BITS_PER_BASE",
    "EncodingError",
    "CountMinSketch",
    "CountingError",
    "ExactKmerCounter",
    "count_reads",
    "KMER_RECORD_BYTES",
    "DatabaseStats",
    "KmerDatabase",
    "MmapKmerDatabase",
    "DnaSequence",
    "ROOT_TAXON",
    "Taxonomy",
    "TaxonomyError",
    "balanced_taxonomy",
    "MAX_PACKED_K",
    "cache_key_kmer",
    "cache_key_kmers",
    "canonical_kmer",
    "canonical_kmers",
    "decode_kmer",
    "encode_kmer",
    "first_diff_base",
    "first_diff_bit",
    "iter_kmers",
    "kmer_bits",
    "pack_kmers",
    "reverse_complement",
    "revcomp_value",
    "revcomp_values",
    "transpose_kmers",
    "read_fasta",
    "read_fastq",
    "write_fasta",
    "write_fastq",
    "TABLE_II_PROFILES",
    "ReadProfile",
    "SyntheticDataset",
    "build_dataset",
    "mutate",
    "phylogenetic_genomes",
    "random_genome",
    "simulate_reads",
]
