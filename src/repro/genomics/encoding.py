"""Two-bit DNA base encoding and bit-level utilities.

Sieve stores reference k-mers in binary using the NCBI 2-bit code
(paper Section IV-A): ``A -> 00``, ``C -> 01``, ``G -> 10``, ``T -> 11``.
Figure 6 of the paper lists a different assignment (``T -> 10``,
``G -> 11``); the two are bijective relabelings, so every result in the
paper is invariant under the choice.  We standardize on the Section IV
(NCBI) code throughout the repository.

This module provides:

* per-base encode/decode tables,
* packing of a k-mer string into an integer (the representation used by
  the k-mer-to-subarray index, Section IV-D),
* bit-serial views of an encoded k-mer: Sieve compares one *bit* per DRAM
  row activation, most-significant base first, so the natural hardware
  ordering of a k-mer is its sequence of ``2k`` bits.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

#: The four canonical DNA bases in encoding order.
BASES = "ACGT"

#: Bits used per base.
BITS_PER_BASE = 2

#: Map from base character to its 2-bit code.
BASE_TO_CODE = {"A": 0b00, "C": 0b01, "G": 0b10, "T": 0b11}

#: Map from 2-bit code to base character.
CODE_TO_BASE = {code: base for base, code in BASE_TO_CODE.items()}

#: Watson-Crick complements.
COMPLEMENT = {"A": "T", "T": "A", "C": "G", "G": "C"}

# Vectorized translation table: ASCII byte -> 2-bit code (255 = invalid).
_ASCII_TO_CODE = np.full(256, 255, dtype=np.uint8)
for _base, _code in BASE_TO_CODE.items():
    _ASCII_TO_CODE[ord(_base)] = _code
    _ASCII_TO_CODE[ord(_base.lower())] = _code
# Shared read-only across forked fleet workers.
_ASCII_TO_CODE.setflags(write=False)


class EncodingError(ValueError):
    """Raised when a sequence contains characters outside ``ACGT``."""


def encode_base(base: str) -> int:
    """Return the 2-bit code of a single base (case-insensitive)."""
    try:
        return BASE_TO_CODE[base.upper()]
    except KeyError:
        raise EncodingError(f"invalid DNA base: {base!r}") from None


def decode_base(code: int) -> str:
    """Return the base character for a 2-bit code."""
    try:
        return CODE_TO_BASE[code]
    except KeyError:
        raise EncodingError(f"invalid 2-bit base code: {code!r}") from None


def encode_kmer(kmer: str) -> int:
    """Pack a k-mer string into an integer, first base in the high bits.

    This is the integer representation consulted by the k-mer-to-subarray
    index table (paper Section IV-D): alphanumeric order of k-mer strings
    equals numeric order of the packed integers, which is what makes
    range-based subarray routing correct.
    """
    value = 0
    for base in kmer:
        value = (value << BITS_PER_BASE) | encode_base(base)
    return value


def decode_kmer(value: int, k: int) -> str:
    """Inverse of :func:`encode_kmer` for a k-mer of length ``k``."""
    if value < 0 or value >= (1 << (BITS_PER_BASE * k)):
        raise EncodingError(f"value {value} out of range for k={k}")
    bases = []
    for shift in range((k - 1) * BITS_PER_BASE, -1, -BITS_PER_BASE):
        bases.append(decode_base((value >> shift) & 0b11))
    return "".join(bases)


def encode_sequence(seq: str) -> np.ndarray:
    """Encode a DNA string into a ``uint8`` array of 2-bit codes."""
    raw = np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
    codes = _ASCII_TO_CODE[raw]
    if (codes == 255).any():
        bad = seq[int(np.argmax(codes == 255))]
        raise EncodingError(f"invalid DNA base: {bad!r}")
    return codes


def decode_sequence(codes: Sequence[int]) -> str:
    """Decode an iterable of 2-bit codes back into a DNA string."""
    return "".join(decode_base(int(c)) for c in codes)


def kmer_bits(value: int, k: int) -> List[int]:
    """Expand a packed k-mer into its ``2k`` bits, MSB (first base) first.

    Sieve's vertical layout stores these bits along a bitline, one DRAM
    row per bit; row ``i`` of Region 1 holds bit ``i`` of every reference
    k-mer in the subarray (paper Figure 7(e)).
    """
    nbits = BITS_PER_BASE * k
    return [(value >> (nbits - 1 - i)) & 1 for i in range(nbits)]


def bits_to_kmer(bits: Sequence[int], k: int) -> int:
    """Inverse of :func:`kmer_bits`."""
    if len(bits) != BITS_PER_BASE * k:
        raise EncodingError(
            f"expected {BITS_PER_BASE * k} bits for k={k}, got {len(bits)}"
        )
    value = 0
    for bit in bits:
        bit = int(bit)
        if bit not in (0, 1):
            raise EncodingError(f"invalid bit: {bit!r}")
        value = (value << 1) | bit
    return value


def first_diff_bit(a: int, b: int, k: int) -> int:
    """Index of the first differing bit between two packed k-mers.

    Bits are indexed MSB-first (the order rows are activated in Sieve).
    Returns ``2k`` when the k-mers are identical.  This quantity drives
    the Early Termination Mechanism: ETM can stop activating rows for a
    candidate as soon as the first differing bit has been compared.
    """
    nbits = BITS_PER_BASE * k
    diff = a ^ b
    if diff == 0:
        return nbits
    return nbits - diff.bit_length()


def first_diff_base(a: int, b: int, k: int) -> int:
    """Index of the first differing *base* between two packed k-mers.

    Returns ``k`` when identical.  Figure 6 of the paper characterizes
    this distribution: 96.9 % of first mismatches fall within the first
    five bases.
    """
    bit = first_diff_bit(a, b, k)
    return bit // BITS_PER_BASE


def reverse_complement(seq: str) -> str:
    """Return the reverse complement of a DNA string."""
    try:
        return "".join(COMPLEMENT[b] for b in reversed(seq.upper()))
    except KeyError as exc:
        raise EncodingError(f"invalid DNA base: {exc.args[0]!r}") from None


def canonical_kmer(value: int, k: int) -> int:
    """Return the lexicographically smaller of a k-mer and its revcomp.

    Metagenomic classifiers (Kraken, CLARK) index canonical k-mers so a
    read and its reverse-complement strand hit the same records.
    """
    return min(value, revcomp_value(value, k))


def revcomp_value(value: int, k: int) -> int:
    """Reverse complement of a packed k-mer, computed on the integer."""
    result = 0
    for _ in range(k):
        base = value & 0b11
        result = (result << BITS_PER_BASE) | (base ^ 0b11)
        value >>= BITS_PER_BASE
    return result


def revcomp_values(values: np.ndarray, k: int) -> np.ndarray:
    """Vectorized :func:`revcomp_value` over a ``uint64`` k-mer array."""
    if k <= 0 or k > MAX_PACKED_K:
        raise EncodingError(
            f"revcomp_values supports 1 <= k <= {MAX_PACKED_K}, got {k}"
        )
    remaining = np.asarray(values, dtype=np.uint64).copy()
    result = np.zeros_like(remaining)
    base_mask = np.uint64(0b11)
    shift = np.uint64(BITS_PER_BASE)
    for _ in range(k):
        result = (result << shift) | ((remaining & base_mask) ^ base_mask)
        remaining >>= shift
    return result


def canonical_kmers(values: np.ndarray, k: int) -> np.ndarray:
    """Vectorized :func:`canonical_kmer` over a ``uint64`` k-mer array."""
    values = np.asarray(values, dtype=np.uint64)
    return np.minimum(values, revcomp_values(values, k))


def cache_key_kmer(value: int, k: int, canonical: bool = True) -> int:
    """Deterministic identity key for caching one k-mer's query answer.

    Two queries may share a cached result exactly when the backend is
    guaranteed to answer them identically.  Canonical backends
    (``BackendCapabilities.canonical``) fold a k-mer and its reverse
    complement onto the same record, so their cache key is the
    canonical form; non-canonical backends distinguish strands and key
    on the raw packed value.  This is the one canonicalization seam the
    service-layer result cache goes through (``repro.service.cache``).
    """
    return canonical_kmer(value, k) if canonical else value


def cache_key_kmers(
    values: Sequence[int], k: int, canonical: bool = True
) -> List[int]:
    """:func:`cache_key_kmer` over a query batch, in batch order."""
    if not canonical:
        return [int(v) for v in values]
    return [canonical_kmer(int(v), k) for v in values]


#: Largest k whose packed representation fits one 64-bit word, the
#: precondition for the vectorized sliding-window packer.
MAX_PACKED_K = 64 // BITS_PER_BASE


def pack_kmers(seq: str, k: int) -> np.ndarray:
    """All packed k-mers of ``seq`` as a ``uint64`` array (vectorized).

    The sliding-window equivalent of :func:`iter_kmers` for ``k <= 32``:
    the sequence is 2-bit encoded in one pass and every window is packed
    with a weighted sum over a strided view, so a length-``L`` sequence
    costs ``O(L * k)`` numpy element operations instead of ``L`` Python
    loop iterations.  This is the packer behind every genome-indexing
    and read-shredding hot loop.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if k > MAX_PACKED_K:
        raise EncodingError(
            f"pack_kmers supports k <= {MAX_PACKED_K} (64-bit packing), got {k}"
        )
    if len(seq) < k:
        return np.empty(0, dtype=np.uint64)
    codes = encode_sequence(seq).astype(np.uint64)
    windows = np.lib.stride_tricks.sliding_window_view(codes, k)
    shifts = np.arange(k - 1, -1, -1, dtype=np.uint64) * np.uint64(BITS_PER_BASE)
    weights = np.uint64(1) << shifts
    return (windows * weights).sum(axis=1, dtype=np.uint64)


def iter_kmers(seq: str, k: int) -> Iterator[int]:
    """Yield packed k-mers from every window of ``seq`` (rolling encode).

    A length-``L`` sequence yields ``L - k + 1`` k-mers, the count used
    by the paper's Table II workload summary.  For ``k <= 32`` the
    windows are packed in one vectorized pass (:func:`pack_kmers`) and
    yielded from the array; wider k-mers fall back to the Python-level
    rolling encode over unbounded ints.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if len(seq) < k:
        return
    if k <= MAX_PACKED_K:
        yield from pack_kmers(seq, k).tolist()
        return
    mask = (1 << (BITS_PER_BASE * k)) - 1
    value = encode_kmer(seq[:k])
    yield value
    for base in seq[k:]:
        value = ((value << BITS_PER_BASE) | encode_base(base)) & mask
        yield value


def transpose_kmers(values: Sequence[int], k: int) -> np.ndarray:
    """Transpose packed k-mers into the column-wise Sieve layout.

    Returns a ``(2k, len(values))`` uint8 bit matrix: entry ``[r, c]`` is
    bit ``r`` (MSB-first) of k-mer ``c``.  Row ``r`` is exactly the data
    a single DRAM row activation delivers to the matchers.  This is the
    host-side "transpose the database" API call of Section IV-C.
    """
    nbits = BITS_PER_BASE * k
    if len(values) == 0:
        return np.empty((nbits, 0), dtype=np.uint8)
    for value in values:
        if value < 0 or value >= (1 << nbits):
            raise EncodingError(f"value {value} out of range for k={k}")
    if nbits <= 64:
        # Vectorized path: one shift-and-mask per bit plane.
        packed = np.asarray(values, dtype=np.uint64)
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        return ((packed[None, :] >> shifts[:, None]) & np.uint64(1)).astype(
            np.uint8
        )
    out = np.empty((nbits, len(values)), dtype=np.uint8)
    for col, value in enumerate(values):
        for row in range(nbits):
            out[row, col] = (value >> (nbits - 1 - row)) & 1
    return out
