"""Synthetic genome, database, and read-set generation.

The paper evaluates with MiniKraken databases and HiSeq/MiSeq/simBA-5
read sets (Table II) that we cannot redistribute.  This module builds
statistically equivalent substitutes:

* random reference genomes attached to a balanced taxonomy,
* a reference k-mer database drawn from those genomes,
* simulated read sets with per-profile read length, count, and
  substitution-error rate, plus a controllable *novel fraction* (reads
  from organisms absent from the database) so the k-mer hit rate can be
  set to the ~1 % the paper observes in real metagenomic samples
  (Section VI-B).

The two dataset statistics Sieve's performance model actually consumes
— the k-mer hit rate and the first-mismatch (ESP) distribution of
Figure 6 — are both emergent properties of these generators and are
validated in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .database import KmerDatabase
from .encoding import BASES
from .sequence import DnaSequence
from .taxonomy import Taxonomy, balanced_taxonomy


class GenerationError(ValueError):
    """Raised on invalid generator parameters."""


@dataclass(frozen=True)
class ReadProfile:
    """A query read-set profile, mirroring one row of paper Table II.

    ``num_sequences`` is the paper's full-scale count; benchmarks run a
    scaled-down count and record the scale factor (the performance model
    is linear in k-mer count, so shapes are preserved).
    """

    name: str
    description: str
    num_sequences: int
    read_length: int
    error_rate: float

    def kmer_count(self, k: int, num_sequences: Optional[int] = None) -> int:
        """Total k-mers the read set yields (Table II's last column)."""
        n = self.num_sequences if num_sequences is None else num_sequences
        return n * max(0, self.read_length - k + 1)


#: The six query files of paper Table II.  Error rates: HiSeq/MiSeq are
#: Illumina platforms (~0.1 % / ~0.5 % substitution errors); simBA-5 is
#: the Kraken benchmark set with 5 % error.  The paper's k-mer counts for
#: the HiSeq rows (6.2e4 / 6.2e8) are internally inconsistent with
#: #sequences x (length - k + 1); we use the computed counts.
TABLE_II_PROFILES: Dict[str, ReadProfile] = {
    "HA": ReadProfile("HA", "HiSeq_Accuracy.fa", 10_000, 92, 0.001),
    "MA": ReadProfile("MA", "MiSeq_Accuracy.fa", 10_000, 157, 0.005),
    "SA": ReadProfile("SA", "simBA5_Accuracy.fa", 10_000, 100, 0.05),
    "HT": ReadProfile("HT", "HiSeq_Timing.fa", 100_000_000, 92, 0.001),
    "MT": ReadProfile("MT", "MiSeq_Timing.fa", 100_000_000, 157, 0.005),
    "ST": ReadProfile("ST", "simBA5_Timing.fa", 100_000_000, 100, 0.05),
}


def random_genome(
    rng: np.random.Generator,
    length: int,
    seq_id: str = "genome",
    taxon_id: Optional[int] = None,
) -> DnaSequence:
    """Generate a uniform-random DNA sequence of ``length`` bases."""
    if length <= 0:
        raise GenerationError(f"genome length must be positive, got {length}")
    codes = rng.integers(0, 4, size=length)
    bases = "".join(BASES[c] for c in codes)
    return DnaSequence(seq_id=seq_id, bases=bases, taxon_id=taxon_id)


def mutate(
    seq: DnaSequence, rate: float, rng: np.random.Generator
) -> DnaSequence:
    """Apply i.i.d. substitution errors at ``rate`` per base.

    Substitutions always change the base (drawn from the other three),
    modelling sequencer miscalls; indels are out of scope because k-mer
    matching treats any error identically (the overlapping k-mers miss).
    """
    if not 0.0 <= rate <= 1.0:
        raise GenerationError(f"error rate must be in [0, 1], got {rate}")
    # "No errors requested" short-circuit; <= keeps it robust to future
    # callers passing tiny-negative rates past a relaxed guard.
    if rate <= 0.0:
        return seq
    chars = list(seq.bases)
    hits = np.flatnonzero(rng.random(len(chars)) < rate)
    for pos in hits:
        current = chars[pos]
        choices = [b for b in BASES if b != current]
        chars[pos] = choices[rng.integers(0, 3)]
    return DnaSequence(seq_id=seq.seq_id, bases="".join(chars), taxon_id=seq.taxon_id)


def simulate_reads(
    genomes: Sequence[DnaSequence],
    num_reads: int,
    read_length: int,
    error_rate: float,
    rng: np.random.Generator,
    novel_fraction: float = 0.0,
    name_prefix: str = "read",
) -> Iterator[DnaSequence]:
    """Simulate shotgun reads from reference genomes.

    A ``novel_fraction`` of reads is generated as uniform-random DNA
    (an organism absent from the database); the rest are windows of the
    reference genomes with substitution errors applied.  Reads inherit
    the ground-truth ``taxon_id`` of their source genome (``None`` for
    novel reads), which the accuracy examples use.
    """
    if not genomes and novel_fraction < 1.0:
        raise GenerationError("need at least one genome for non-novel reads")
    if not 0.0 <= novel_fraction <= 1.0:
        raise GenerationError(f"novel_fraction must be in [0, 1], got {novel_fraction}")
    usable = [g for g in genomes if len(g) >= read_length]
    if not usable and novel_fraction < 1.0:
        raise GenerationError(
            f"no genome is at least read_length={read_length} bases long"
        )
    for i in range(num_reads):
        if rng.random() < novel_fraction:
            yield random_genome(rng, read_length, f"{name_prefix}_{i}_novel")
            continue
        genome = usable[rng.integers(0, len(usable))]
        start = int(rng.integers(0, len(genome) - read_length + 1))
        window = genome.subsequence(start, start + read_length)
        read = DnaSequence(
            seq_id=f"{name_prefix}_{i}",
            bases=window.bases,
            taxon_id=genome.taxon_id,
        )
        yield mutate(read, error_rate, rng)


def phylogenetic_genomes(
    taxonomy: Taxonomy,
    genome_length: int,
    rng: np.random.Generator,
    mutation_rate_per_level: float = 0.02,
) -> List[DnaSequence]:
    """Generate species genomes correlated along the taxonomy.

    A random ancestral sequence sits at the root; each child inherits
    its parent's sequence with ``mutation_rate_per_level`` substitutions.
    Sibling species therefore share long exact stretches — which is what
    makes real reference sets contain k-mers occurring in several taxa
    (the LCA-merge case of Kraken-style databases) and nearest-neighbour
    references share long prefixes (the ETM-relevant statistic).

    Returns one genome per species leaf, tagged with its taxon id.
    """
    if genome_length <= 0:
        raise GenerationError(f"genome length must be positive, got {genome_length}")
    if not 0.0 <= mutation_rate_per_level <= 1.0:
        raise GenerationError("mutation rate must be in [0, 1]")
    from .taxonomy import ROOT_TAXON

    sequences: dict = {
        ROOT_TAXON: random_genome(rng, genome_length, "ancestor")
    }

    def materialize(taxon: int) -> DnaSequence:
        if taxon in sequences:
            return sequences[taxon]
        parent = taxonomy.node(taxon).parent_id
        parent_seq = materialize(parent)
        child = mutate(parent_seq, mutation_rate_per_level, rng)
        child = DnaSequence(f"genome_{taxon}", child.bases, taxon_id=taxon)
        sequences[taxon] = child
        return child

    genomes = []
    for leaf in sorted(taxonomy.leaves()):
        if taxonomy.node(leaf).rank == "species":
            genomes.append(materialize(leaf))
    if not genomes:
        raise GenerationError("taxonomy has no species leaves")
    return genomes


@dataclass
class SyntheticDataset:
    """A complete synthetic evaluation dataset.

    Bundles the taxonomy, the reference genomes, the built k-mer
    database, and a query read set — everything one paper benchmark
    needs.
    """

    k: int
    taxonomy: Taxonomy
    genomes: List[DnaSequence]
    database: KmerDatabase
    reads: List[DnaSequence]
    profile: Optional[ReadProfile] = None
    seed: int = 0
    scale_note: str = ""

    def query_kmers(self) -> Iterator[Tuple[str, int]]:
        """Yield (read id, packed k-mer) pairs over the whole read set."""
        for read in self.reads:
            for kmer in read.kmers(self.k):
                yield read.seq_id, kmer

    def measured_hit_rate(self) -> float:
        """Fraction of query k-mers present in the database."""
        hits = 0
        total = 0
        for _, kmer in self.query_kmers():
            total += 1
            if kmer in self.database:
                hits += 1
        return hits / total if total else 0.0


def build_dataset(
    k: int = 31,
    num_species: int = 8,
    genome_length: int = 2_000,
    num_reads: int = 200,
    read_length: int = 100,
    error_rate: float = 0.01,
    novel_fraction: float = 0.0,
    canonical: bool = False,
    seed: int = 1234,
    profile: Optional[ReadProfile] = None,
    phylogenetic: bool = False,
    mutation_rate_per_level: float = 0.02,
) -> SyntheticDataset:
    """Generate a full dataset: taxonomy + genomes + database + reads.

    When ``profile`` is given, ``num_reads``/``read_length``/``error_rate``
    are taken from it (``num_reads`` still overrides the profile's
    full-scale count so benchmarks can run scaled down).  With
    ``phylogenetic=True`` genomes are correlated along the taxonomy
    (shared k-mers between related species, LCA-merged records) instead
    of independent random sequences.
    """
    if profile is not None:
        read_length = profile.read_length
        error_rate = profile.error_rate
    rng = np.random.default_rng(seed)
    taxonomy = balanced_taxonomy(num_species)
    species = sorted(taxonomy.leaves())[:num_species]
    if phylogenetic:
        genomes = phylogenetic_genomes(
            taxonomy, genome_length, rng,
            mutation_rate_per_level=mutation_rate_per_level,
        )[:num_species]
    else:
        genomes = [
            random_genome(rng, genome_length, f"genome_{taxon}", taxon)
            for taxon in species
        ]
    database = KmerDatabase.from_genomes(
        ((g, g.taxon_id) for g in genomes),
        k,
        canonical=canonical,
        taxonomy=taxonomy,
    )
    reads = list(
        simulate_reads(
            genomes,
            num_reads,
            read_length,
            error_rate,
            rng,
            novel_fraction=novel_fraction,
        )
    )
    scale_note = ""
    if profile is not None and num_reads != profile.num_sequences:
        scale_note = (
            f"scaled: {num_reads} of {profile.num_sequences} reads "
            f"({num_reads / profile.num_sequences:.2e}x)"
        )
    return SyntheticDataset(
        k=k,
        taxonomy=taxonomy,
        genomes=genomes,
        database=database,
        reads=reads,
        profile=profile,
        seed=seed,
        scale_note=scale_note,
    )
