"""DNA sequence value type used across the toolkit.

A :class:`DnaSequence` couples an identifier with validated bases and
exposes the operations the rest of the pipeline needs: windowed k-mer
extraction (packed integers), reverse complement, and slicing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from . import encoding


@dataclass(frozen=True)
class DnaSequence:
    """An immutable, validated DNA sequence.

    Parameters
    ----------
    seq_id:
        Identifier (FASTA header, read name, ...).
    bases:
        The sequence string; validated to contain only ``ACGT``
        (case-insensitive; stored uppercased).
    taxon_id:
        Optional ground-truth taxon for synthetic reads, used by the
        classification examples to measure accuracy.
    """

    seq_id: str
    bases: str
    taxon_id: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        normalized = self.bases.upper()
        for base in normalized:
            if base not in encoding.BASE_TO_CODE:
                raise encoding.EncodingError(
                    f"sequence {self.seq_id!r} contains invalid base {base!r}"
                )
        object.__setattr__(self, "bases", normalized)

    def __len__(self) -> int:
        return len(self.bases)

    def __str__(self) -> str:
        return self.bases

    def kmers(self, k: int) -> Iterator[int]:
        """Yield packed k-mers over every window (see Table II counts)."""
        return encoding.iter_kmers(self.bases, k)

    def kmer_list(self, k: int) -> List[int]:
        """Materialized :meth:`kmers` (vectorized for packable k)."""
        if 0 < k <= encoding.MAX_PACKED_K:
            return encoding.pack_kmers(self.bases, k).tolist()
        return list(self.kmers(k))

    def kmer_count(self, k: int) -> int:
        """Number of k-mers a window of size ``k`` produces."""
        return max(0, len(self.bases) - k + 1)

    def reverse_complement(self) -> "DnaSequence":
        """Return the reverse-complement sequence (same id, same taxon)."""
        return DnaSequence(
            seq_id=self.seq_id,
            bases=encoding.reverse_complement(self.bases),
            taxon_id=self.taxon_id,
        )

    def subsequence(self, start: int, end: int) -> "DnaSequence":
        """Return ``bases[start:end]`` as a new sequence."""
        if not 0 <= start <= end <= len(self.bases):
            raise IndexError(
                f"subsequence [{start}:{end}] out of range for "
                f"length-{len(self.bases)} sequence"
            )
        return DnaSequence(
            seq_id=f"{self.seq_id}[{start}:{end}]",
            bases=self.bases[start:end],
            taxon_id=self.taxon_id,
        )
