"""Reference k-mer database (k-mer pattern -> taxon label).

This is the offline-built structure every k-mer matching pipeline in the
paper consumes: CLARK/LMAT keep it in a hash table, Kraken in a
signature-bucketed sorted list, and Sieve transposes it column-wise onto
DRAM bitlines.  The database itself is engine-agnostic: a mapping from
packed canonical-or-raw k-mers to taxon ids, plus the size accounting
(~12 bytes per record, paper Section II) that the capacity planning and
the CPU cache model use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .encoding import canonical_kmer, decode_kmer, iter_kmers
from .sequence import DnaSequence
from .taxonomy import Taxonomy

#: Bytes per k-mer record in real tools (paper Section II: "k-mer records
#: are typically around 12 bytes"): 8-byte key + 4-byte taxon id.
KMER_RECORD_BYTES = 12


class DatabaseError(ValueError):
    """Raised on inconsistent database construction or queries."""


@dataclass(frozen=True)
class DatabaseStats:
    """Size summary of a built database."""

    k: int
    num_kmers: int
    num_taxa: int
    record_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.num_kmers * self.record_bytes

    @property
    def total_gib(self) -> float:
        return self.total_bytes / 2**30


class KmerDatabase:
    """A reference k-mer set with taxon payloads.

    Parameters
    ----------
    k:
        k-mer length (paper uses k = 31 throughout).
    canonical:
        When true, k-mers are canonicalized (min of k-mer and reverse
        complement) at both build and query time, as Kraken/CLARK do.
    taxonomy:
        Optional taxonomy; when present, k-mers found in multiple taxa
        are assigned the LCA of the occurrences (Kraken's rule) instead
        of raising.
    """

    def __init__(
        self,
        k: int,
        canonical: bool = False,
        taxonomy: Optional[Taxonomy] = None,
    ) -> None:
        if not 1 <= k <= 32:
            raise DatabaseError(f"k must be in [1, 32] for packed storage, got {k}")
        self.k = k
        self.canonical = canonical
        self.taxonomy = taxonomy
        self._table: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, kmer: int) -> bool:
        return self._normalize(kmer) in self._table

    def _normalize(self, kmer: int) -> int:
        if kmer < 0 or kmer >= (1 << (2 * self.k)):
            raise DatabaseError(f"k-mer {kmer} out of range for k={self.k}")
        return canonical_kmer(kmer, self.k) if self.canonical else kmer

    def add(self, kmer: int, taxon_id: int) -> None:
        """Insert a (k-mer, taxon) record, LCA-merging on conflicts."""
        key = self._normalize(kmer)
        existing = self._table.get(key)
        if existing is None or existing == taxon_id:
            self._table[key] = taxon_id
        elif self.taxonomy is not None:
            self._table[key] = self.taxonomy.lca(existing, taxon_id)
        else:
            raise DatabaseError(
                f"k-mer {decode_kmer(key, self.k)} maps to both taxon "
                f"{existing} and {taxon_id}; provide a taxonomy to LCA-merge"
            )

    def add_genome(self, genome: DnaSequence, taxon_id: int) -> int:
        """Index every k-mer of a genome under ``taxon_id``; returns count."""
        count = 0
        for kmer in iter_kmers(genome.bases, self.k):
            self.add(kmer, taxon_id)
            count += 1
        return count

    def lookup(self, kmer: int) -> Optional[int]:
        """Return the taxon payload for a query k-mer, or ``None`` (miss)."""
        return self._table.get(self._normalize(kmer))

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate over (packed k-mer, taxon id) records, unordered."""
        return iter(self._table.items())

    def sorted_kmers(self) -> List[int]:
        """All reference k-mers in ascending packed-integer order.

        This is the order Sieve loads references into subarrays
        (Section IV-D: "reference k-mers in each subarray are sorted
        alphanumerically"), which makes the range index exact.
        """
        return sorted(self._table)

    def sorted_records(self) -> List[Tuple[int, int]]:
        """Sorted (k-mer, taxon) pairs — the Sieve load image."""
        return sorted(self._table.items())

    def stats(self) -> DatabaseStats:
        """Size summary (used for capacity planning and Table II style rows)."""
        return DatabaseStats(
            k=self.k,
            num_kmers=len(self._table),
            num_taxa=len(set(self._table.values())),
            record_bytes=KMER_RECORD_BYTES,
        )

    @classmethod
    def from_genomes(
        cls,
        genomes: Iterable[Tuple[DnaSequence, int]],
        k: int,
        canonical: bool = False,
        taxonomy: Optional[Taxonomy] = None,
    ) -> "KmerDatabase":
        """Build a database from (genome, taxon) pairs."""
        db = cls(k, canonical=canonical, taxonomy=taxonomy)
        for genome, taxon_id in genomes:
            db.add_genome(genome, taxon_id)
        return db
