"""Reference k-mer database (k-mer pattern -> taxon label).

This is the offline-built structure every k-mer matching pipeline in the
paper consumes: CLARK/LMAT keep it in a hash table, Kraken in a
signature-bucketed sorted list, and Sieve transposes it column-wise onto
DRAM bitlines.  The database itself is engine-agnostic: a mapping from
packed canonical-or-raw k-mers to taxon ids, plus the size accounting
(~12 bytes per record, paper Section II) that the capacity planning and
the CPU cache model use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..api import (
    BackendCapabilities,
    BackendResult,
    BackendStats,
    classification_from_results,
    warn_deprecated,
)
from .encoding import canonical_kmer, canonical_kmers, decode_kmer, pack_kmers
from .sequence import DnaSequence
from .taxonomy import Taxonomy

#: Bytes per k-mer record in real tools (paper Section II: "k-mer records
#: are typically around 12 bytes"): 8-byte key + 4-byte taxon id.
KMER_RECORD_BYTES = 12


class DatabaseError(ValueError):
    """Raised on inconsistent database construction or queries."""


@dataclass(frozen=True)
class DatabaseStats:
    """Size summary of a built database."""

    k: int
    num_kmers: int
    num_taxa: int
    record_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.num_kmers * self.record_bytes

    @property
    def total_gib(self) -> float:
        return self.total_bytes / 2**30


class KmerDatabase:
    """A reference k-mer set with taxon payloads.

    Parameters
    ----------
    k:
        k-mer length (paper uses k = 31 throughout).
    canonical:
        When true, k-mers are canonicalized (min of k-mer and reverse
        complement) at both build and query time, as Kraken/CLARK do.
    taxonomy:
        Optional taxonomy; when present, k-mers found in multiple taxa
        are assigned the LCA of the occurrences (Kraken's rule) instead
        of raising.
    """

    def __init__(
        self,
        k: int,
        canonical: bool = False,
        taxonomy: Optional[Taxonomy] = None,
    ) -> None:
        if not 1 <= k <= 32:
            raise DatabaseError(f"k must be in [1, 32] for packed storage, got {k}")
        self.k = k
        self.canonical = canonical
        self.taxonomy = taxonomy
        self._table: Dict[int, int] = {}
        # Sorted key/payload arrays for bulk lookup, rebuilt on demand.
        self._lookup_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # Protocol-level query/hit accounting (repro.api.BackendStats).
        self._backend_stats = BackendStats()
        # Set by repro.faults.faulted_database: records were corrupted.
        self._degraded = False

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, kmer: int) -> bool:
        return self._normalize(kmer) in self._table

    def _normalize(self, kmer: int) -> int:
        if kmer < 0 or kmer >= (1 << (2 * self.k)):
            raise DatabaseError(f"k-mer {kmer} out of range for k={self.k}")
        return canonical_kmer(kmer, self.k) if self.canonical else kmer

    def add(self, kmer: int, taxon_id: int) -> None:
        """Insert a (k-mer, taxon) record, LCA-merging on conflicts."""
        self._insert(self._normalize(kmer), taxon_id)

    def _insert(self, key: int, taxon_id: int) -> None:
        """Install one pre-normalized record, LCA-merging on conflicts."""
        self._lookup_cache = None
        existing = self._table.get(key)
        if existing is None or existing == taxon_id:
            self._table[key] = taxon_id
        elif self.taxonomy is not None:
            self._table[key] = self.taxonomy.lca(existing, taxon_id)
        else:
            raise DatabaseError(
                f"k-mer {decode_kmer(key, self.k)} maps to both taxon "
                f"{existing} and {taxon_id}; provide a taxonomy to LCA-merge"
            )

    def add_genome(self, genome: DnaSequence, taxon_id: int) -> int:
        """Index every k-mer of a genome under ``taxon_id``; returns count.

        Windows are packed (and canonicalized) in one vectorized pass;
        only the dictionary insert runs per record.
        """
        keys = pack_kmers(genome.bases, self.k)
        if self.canonical:
            keys = canonical_kmers(keys, self.k)
        for key in keys.tolist():
            self._insert(key, taxon_id)
        return len(keys)

    def get(self, kmer: int) -> Optional[int]:
        """Return the taxon payload for a query k-mer, or ``None`` (miss).

        Dict-like accessor: does not touch the protocol query counters
        (use :meth:`query` for tracked traffic).
        """
        return self._table.get(self._normalize(kmer))

    def lookup(self, kmer: int) -> Optional[int]:
        """Deprecated name for :meth:`get` (PR-4 API unification)."""
        warn_deprecated("KmerDatabase.lookup()", "KmerDatabase.get()")
        return self.get(kmer)

    def _lookup_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted key array + aligned payload array (cached)."""
        if self._lookup_cache is None:
            if self._table:
                keys = np.fromiter(
                    self._table.keys(), dtype=np.uint64, count=len(self._table)
                )
                payloads = np.fromiter(
                    self._table.values(), dtype=np.int64, count=len(self._table)
                )
                order = np.argsort(keys)
                sorted_keys = keys[order]
                sorted_payloads = payloads[order]
            else:
                sorted_keys = np.empty(0, dtype=np.uint64)
                sorted_payloads = np.empty(0, dtype=np.int64)
            # Frozen: the cached arrays are handed to every caller (and
            # shared by forked fleet workers), so in-place mutation
            # would corrupt all later lookups.
            sorted_keys.setflags(write=False)
            sorted_payloads.setflags(write=False)
            self._lookup_cache = (sorted_keys, sorted_payloads)
        return self._lookup_cache

    def _bulk_payloads(self, kmers: Sequence[int]) -> List[Optional[int]]:
        """Bulk :meth:`get`: sorted-array binary search in one pass.

        Queries are canonicalized vectorized, then resolved against the
        cached sorted key array with ``np.searchsorted`` — the software
        analogue of the device's batched dispatch, and the path the
        benchmark harness tracks for host-side lookup throughput.
        """
        if len(kmers) == 0:
            return []
        try:
            queries = np.asarray(kmers, dtype=np.uint64)
        except (OverflowError, ValueError) as exc:
            raise DatabaseError(
                f"query k-mers out of range for k={self.k}: {exc}"
            ) from None
        if self.k < 32 and bool((queries >= (1 << (2 * self.k))).any()):
            bad = int(queries[queries >= (1 << (2 * self.k))][0])
            raise DatabaseError(f"k-mer {bad} out of range for k={self.k}")
        if self.canonical:
            queries = canonical_kmers(queries, self.k)
        keys, payloads = self._lookup_arrays()
        positions = np.searchsorted(keys, queries)
        in_range = positions < len(keys)
        found = np.zeros(len(queries), dtype=bool)
        found[in_range] = keys[positions[in_range]] == queries[in_range]
        return [
            int(payloads[pos]) if hit else None
            for pos, hit in zip(positions.tolist(), found.tolist())
        ]

    def query(
        self, kmers: Sequence[int], *, batched: bool = True
    ) -> List[BackendResult]:
        """Unified batch query (:class:`repro.api.QueryBackend` surface).

        ``batched`` selects between the vectorized searchsorted pass and
        a scalar per-k-mer dict probe; both produce identical payloads
        (the host has no command-level protocol to replay).
        """
        if batched:
            payloads = self._bulk_payloads(kmers)
        else:
            payloads = [self.get(kmer) for kmer in kmers]
        results = [
            BackendResult(query=kmer, hit=payload is not None, payload=payload)
            for kmer, payload in zip(kmers, payloads)
        ]
        self._backend_stats.record(results)
        return results

    def lookup_many(self, kmers: Sequence[int]) -> List[Optional[int]]:
        """Deprecated payload-list shim over :meth:`query`."""
        warn_deprecated("KmerDatabase.lookup_many()", "KmerDatabase.query()")
        return self._bulk_payloads(kmers)

    def classify(self, read: DnaSequence):
        """Classify one read through the shared vote-counting path."""
        results = self.query(list(read.kmers(self.k)))
        return classification_from_results(
            read.seq_id, results, true_taxon=read.taxon_id
        )

    def mark_degraded(self) -> None:
        """Flag this database as built from fault-corrupted records
        (surfaced through ``capabilities().degraded``)."""
        self._degraded = True

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="kmer-database",
            kind="host-sorted-array",
            k=self.k,
            canonical=self.canonical,
            batched=True,
            degraded=self._degraded,
        )

    def stats(self) -> BackendStats:
        """Uniform query/hit accounting (:class:`repro.api.QueryBackend`).

        Point-in-time snapshot, like every other backend's ``stats()``.
        """
        return BackendStats(
            queries=self._backend_stats.queries,
            hits=self._backend_stats.hits,
        )

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate over (packed k-mer, taxon id) records, unordered."""
        return iter(self._table.items())

    def sorted_kmers(self) -> List[int]:
        """All reference k-mers in ascending packed-integer order.

        This is the order Sieve loads references into subarrays
        (Section IV-D: "reference k-mers in each subarray are sorted
        alphanumerically"), which makes the range index exact.
        """
        return sorted(self._table)

    def sorted_records(self) -> List[Tuple[int, int]]:
        """Sorted (k-mer, taxon) pairs — the Sieve load image."""
        return sorted(self._table.items())

    def size_stats(self) -> DatabaseStats:
        """Size summary (used for capacity planning and Table II style rows).

        Named ``stats()`` before the PR-4 unification; that name now
        carries the protocol-wide query/hit accounting.
        """
        return DatabaseStats(
            k=self.k,
            num_kmers=len(self._table),
            num_taxa=len(set(self._table.values())),
            record_bytes=KMER_RECORD_BYTES,
        )

    @classmethod
    def from_genomes(
        cls,
        genomes: Iterable[Tuple[DnaSequence, int]],
        k: int,
        canonical: bool = False,
        taxonomy: Optional[Taxonomy] = None,
    ) -> "KmerDatabase":
        """Build a database from (genome, taxon) pairs."""
        db = cls(k, canonical=canonical, taxonomy=taxonomy)
        for genome, taxon_id in genomes:
            db.add_genome(genome, taxon_id)
        return db

    @staticmethod
    def open_mmap(
        path,
        taxonomy: Optional[Taxonomy] = None,
        verify: bool = False,
    ) -> "MmapKmerDatabase":
        """Open a saved segment directory as a read-only mmap database.

        Zero-copy counterpart of :func:`repro.serialization.save_segments`:
        the sorted record arrays are memory-mapped, so many processes
        (fleet workers, service shards) share one page-cached copy of
        the reference with no per-process build cost.  ``verify=True``
        re-hashes the segments against the manifest before use.
        """
        from .. import serialization

        return serialization.load_segments(
            path, taxonomy=taxonomy, verify=verify
        )


class MmapKmerDatabase(KmerDatabase):
    """Read-only :class:`KmerDatabase` view over mmap-loaded segments.

    Backed directly by the sorted key/payload arrays a segment
    directory maps (:meth:`KmerDatabase.open_mmap`), so construction is
    O(1): no dict build, no LCA merging, no copy.  Every query path —
    scalar :meth:`get`, batched :meth:`query`, Sieve device loading via
    :meth:`sorted_records` — reads the mapped pages in place.  Mutation
    raises: the segment image is shared between processes.
    """

    def __init__(
        self,
        k: int,
        keys: np.ndarray,
        payloads: np.ndarray,
        canonical: bool = False,
        taxonomy: Optional[Taxonomy] = None,
        content_hash: str = "",
        source: Optional[str] = None,
        degraded: bool = False,
    ) -> None:
        super().__init__(k, canonical=canonical, taxonomy=taxonomy)
        if keys.ndim != 1 or payloads.shape != keys.shape:
            raise DatabaseError(
                f"segment arrays must be aligned 1-D, got shapes "
                f"{keys.shape} and {payloads.shape}"
            )
        if keys.size and bool((keys[1:] <= keys[:-1]).any()):
            raise DatabaseError(
                "segment keys must be strictly ascending (sorted, unique)"
            )
        if keys.size and int(keys[-1]) >= (1 << (2 * k)):
            raise DatabaseError(
                f"segment keys out of range for k={k}"
            )
        self._keys = keys
        self._payloads = payloads
        # The arrays are already read-only (mmap_mode="r"); install them
        # as the lookup cache so the batched path never rebuilds.
        self._lookup_cache = (keys, payloads)
        self._content_hash = content_hash
        self._source = source
        if degraded:
            self.mark_degraded()

    @property
    def content_hash(self) -> str:
        """Manifest content hash of the mapped segment image."""
        return self._content_hash

    @property
    def source(self) -> Optional[str]:
        """Segment directory this database was opened from."""
        return self._source

    def record_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The mapped, sorted ``(keys, payloads)`` arrays, zero-copy.

        Read-only views straight over the segment pages — the seam
        :mod:`repro.cluster` workers use to slice out their owned
        partitions without materializing the full record list.
        """
        return self._keys, self._payloads

    def _insert(self, key: int, taxon_id: int) -> None:
        raise DatabaseError(
            "mmap-opened databases are read-only (the segment image is "
            "shared between processes); rebuild and re-save instead"
        )

    def __len__(self) -> int:
        return int(self._keys.size)

    def __contains__(self, kmer: int) -> bool:
        return self.get(kmer) is not None

    def get(self, kmer: int) -> Optional[int]:
        key = self._normalize(kmer)
        pos = int(np.searchsorted(self._keys, np.uint64(key)))
        if pos < self._keys.size and int(self._keys[pos]) == key:
            return int(self._payloads[pos])
        return None

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self.sorted_records())

    def sorted_kmers(self) -> List[int]:
        return [int(k) for k in self._keys]

    def sorted_records(self) -> List[Tuple[int, int]]:
        return [
            (int(k), int(t)) for k, t in zip(self._keys, self._payloads)
        ]

    def size_stats(self) -> DatabaseStats:
        return DatabaseStats(
            k=self.k,
            num_kmers=int(self._keys.size),
            num_taxa=int(np.unique(self._payloads).size),
            record_bytes=KMER_RECORD_BYTES,
        )

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="kmer-database",
            kind="host-sorted-array-mmap",
            k=self.k,
            canonical=self.canonical,
            batched=True,
            degraded=self._degraded,
        )
