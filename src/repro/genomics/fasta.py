"""Minimal FASTA/FASTQ readers and writers.

The paper's query workloads (Table II) are FASTA files produced by read
simulators.  This module provides enough of the two formats for the
examples and the workload generator to round-trip read sets through
disk, with strict validation and streaming iteration.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, List, TextIO, Union

from .sequence import DnaSequence

PathOrFile = Union[str, Path, TextIO]


class FastaError(ValueError):
    """Raised on malformed FASTA/FASTQ input."""


def _open_for_read(source: PathOrFile) -> TextIO:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="ascii")
    return source


def _open_for_write(target: PathOrFile) -> TextIO:
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="ascii")
    return target


def read_fasta(source: PathOrFile) -> Iterator[DnaSequence]:
    """Stream sequences from a FASTA file or file-like object.

    Multi-line records are joined; blank lines are ignored.  Raises
    :class:`FastaError` when the file does not start with a header or a
    record has no sequence data.
    """
    handle = _open_for_read(source)
    own = isinstance(source, (str, Path))
    try:
        header = None
        chunks: List[str] = []
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith(">"):
                if header is not None:
                    yield _make_record(header, chunks)
                elif chunks:
                    raise FastaError("sequence data before first FASTA header")
                header = line[1:].strip()
                if not header:
                    raise FastaError(f"empty FASTA header at line {line_no}")
                chunks = []
            else:
                if header is None:
                    raise FastaError("FASTA file must start with a '>' header")
                chunks.append(line)
        if header is not None:
            yield _make_record(header, chunks)
    finally:
        if own:
            handle.close()


def _make_record(header: str, chunks: List[str]) -> DnaSequence:
    if not chunks:
        raise FastaError(f"FASTA record {header!r} has no sequence data")
    seq_id = header.split()[0]
    return DnaSequence(seq_id=seq_id, bases="".join(chunks))


def write_fasta(
    sequences: Iterable[DnaSequence],
    target: PathOrFile,
    line_width: int = 70,
) -> int:
    """Write sequences in FASTA format; returns the record count."""
    if line_width <= 0:
        raise ValueError(f"line_width must be positive, got {line_width}")
    handle = _open_for_write(target)
    own = isinstance(target, (str, Path))
    count = 0
    try:
        for seq in sequences:
            handle.write(f">{seq.seq_id}\n")
            for start in range(0, len(seq.bases), line_width):
                handle.write(seq.bases[start : start + line_width] + "\n")
            count += 1
    finally:
        if own:
            handle.close()
    return count


def read_fastq(source: PathOrFile) -> Iterator[DnaSequence]:
    """Stream sequences from a FASTQ file (qualities are discarded).

    The paper's ESP characterization input (``Ancestor-R1.fastq``) is
    FASTQ; Sieve itself never consumes quality scores, so they are
    validated for length and dropped.
    """
    handle = _open_for_read(source)
    own = isinstance(source, (str, Path))
    try:
        while True:
            header = handle.readline()
            if not header:
                return
            header = header.strip()
            if not header:
                continue
            if not header.startswith("@"):
                raise FastaError(f"FASTQ record must start with '@': {header!r}")
            bases = handle.readline().strip()
            plus = handle.readline().strip()
            quals = handle.readline().strip()
            if not plus.startswith("+"):
                raise FastaError(f"FASTQ separator line missing for {header!r}")
            if len(quals) != len(bases):
                raise FastaError(
                    f"FASTQ quality length {len(quals)} != sequence length "
                    f"{len(bases)} for {header!r}"
                )
            yield DnaSequence(seq_id=header[1:].split()[0], bases=bases)
    finally:
        if own:
            handle.close()


def write_fastq(
    sequences: Iterable[DnaSequence],
    target: PathOrFile,
    quality_char: str = "I",
) -> int:
    """Write sequences in FASTQ format with uniform quality; returns count."""
    if len(quality_char) != 1:
        raise ValueError("quality_char must be a single character")
    handle = _open_for_write(target)
    own = isinstance(target, (str, Path))
    count = 0
    try:
        for seq in sequences:
            handle.write(f"@{seq.seq_id}\n{seq.bases}\n+\n")
            handle.write(quality_char * len(seq.bases) + "\n")
            count += 1
    finally:
        if own:
            handle.close()
    return count


def fasta_string(sequences: Iterable[DnaSequence]) -> str:
    """Render sequences to an in-memory FASTA string (for tests/examples)."""
    buf = io.StringIO()
    write_fasta(sequences, buf)
    return buf.getvalue()
