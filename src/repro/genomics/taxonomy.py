"""Taxonomy tree substrate.

Metagenomic classifiers map k-mers to *taxon labels* — nodes in a
taxonomy tree (paper Figure 3).  Kraken-style pipelines additionally
need the lowest common ancestor (LCA) of two taxa when a k-mer occurs in
several genomes.  This module implements the tree, LCA, and a compact
record of ranks/names, so the database builder and the classification
examples have a real taxonomy to work against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

#: Conventional ranks from root to leaf.
RANKS = (
    "root",
    "domain",
    "phylum",
    "class",
    "order",
    "family",
    "genus",
    "species",
)

#: Taxon id of the root node.
ROOT_TAXON = 1


class TaxonomyError(ValueError):
    """Raised on malformed taxonomy operations."""


@dataclass
class TaxonNode:
    """A node in the taxonomy tree."""

    taxon_id: int
    name: str
    rank: str
    parent_id: Optional[int]
    children: List[int] = field(default_factory=list)


class Taxonomy:
    """A rooted taxonomy tree with LCA queries.

    The tree always contains a root node with id :data:`ROOT_TAXON`.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, TaxonNode] = {}
        self._depth: Dict[int, int] = {}
        root = TaxonNode(ROOT_TAXON, "root", "root", parent_id=None)
        self._nodes[ROOT_TAXON] = root
        self._depth[ROOT_TAXON] = 0

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, taxon_id: int) -> bool:
        return taxon_id in self._nodes

    def add(
        self,
        taxon_id: int,
        name: str,
        rank: str,
        parent_id: int = ROOT_TAXON,
    ) -> TaxonNode:
        """Insert a node under ``parent_id`` and return it."""
        if taxon_id in self._nodes:
            raise TaxonomyError(f"taxon {taxon_id} already exists")
        if parent_id not in self._nodes:
            raise TaxonomyError(f"parent taxon {parent_id} does not exist")
        node = TaxonNode(taxon_id, name, rank, parent_id)
        self._nodes[taxon_id] = node
        self._nodes[parent_id].children.append(taxon_id)
        self._depth[taxon_id] = self._depth[parent_id] + 1
        return node

    def node(self, taxon_id: int) -> TaxonNode:
        """Return the node for ``taxon_id``."""
        try:
            return self._nodes[taxon_id]
        except KeyError:
            raise TaxonomyError(f"unknown taxon {taxon_id}") from None

    def name(self, taxon_id: int) -> str:
        """Scientific name of a taxon."""
        return self.node(taxon_id).name

    def depth(self, taxon_id: int) -> int:
        """Distance from the root (root has depth 0)."""
        self.node(taxon_id)
        return self._depth[taxon_id]

    def lineage(self, taxon_id: int) -> List[int]:
        """Path of taxon ids from the root down to ``taxon_id``."""
        path = []
        current: Optional[int] = taxon_id
        while current is not None:
            path.append(current)
            current = self.node(current).parent_id
        path.reverse()
        return path

    def lca(self, a: int, b: int) -> int:
        """Lowest common ancestor of two taxa."""
        da, db = self.depth(a), self.depth(b)
        while da > db:
            a = self.node(a).parent_id  # type: ignore[assignment]
            da -= 1
        while db > da:
            b = self.node(b).parent_id  # type: ignore[assignment]
            db -= 1
        while a != b:
            a = self.node(a).parent_id  # type: ignore[assignment]
            b = self.node(b).parent_id  # type: ignore[assignment]
        return a

    def lca_many(self, taxa: Sequence[int]) -> int:
        """LCA of a non-empty collection of taxa."""
        if not taxa:
            raise TaxonomyError("lca_many requires at least one taxon")
        result = taxa[0]
        for taxon in taxa[1:]:
            result = self.lca(result, taxon)
        return result

    def leaves(self) -> Iterator[int]:
        """Yield ids of all leaf taxa."""
        for taxon_id, node in self._nodes.items():
            if not node.children:
                yield taxon_id

    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """True when ``ancestor`` lies on the root path of ``descendant``."""
        return ancestor in self.lineage(descendant)

    @classmethod
    def linear_chain(cls, names: Sequence[str]) -> "Taxonomy":
        """Build a root→...→leaf chain, one node per name (test helper)."""
        tax = cls()
        parent = ROOT_TAXON
        for i, name in enumerate(names):
            rank = RANKS[min(i + 1, len(RANKS) - 1)]
            node = tax.add(parent * 10 + 2, name, rank, parent)
            parent = node.taxon_id
        return tax


def balanced_taxonomy(
    num_species: int, branching: int = 4, name_prefix: str = "taxon"
) -> Taxonomy:
    """Build a balanced taxonomy with ``num_species`` leaf species.

    Interior levels use ``branching``-way fan-out.  Taxon ids are
    assigned breadth-first starting at 2 (1 is the root), so species ids
    are stable for a given (num_species, branching) pair — the property
    the synthetic database generator relies on.
    """
    if num_species <= 0:
        raise TaxonomyError(f"num_species must be positive, got {num_species}")
    if branching < 2:
        raise TaxonomyError(f"branching must be >= 2, got {branching}")
    tax = Taxonomy()
    next_id = 2
    frontier = [ROOT_TAXON]
    level = 1
    # Grow levels until one more level of fan-out can cover all species.
    while len(frontier) * branching < num_species:
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                rank = RANKS[min(level, len(RANKS) - 2)]
                node = tax.add(next_id, f"{name_prefix}_{rank}_{next_id}", rank, parent)
                new_frontier.append(node.taxon_id)
                next_id += 1
        frontier = new_frontier
        level += 1
    # Final level: species leaves, distributed round-robin over frontier.
    for i in range(num_species):
        parent = frontier[i % len(frontier)]
        tax.add(next_id, f"{name_prefix}_species_{next_id}", "species", parent)
        next_id += 1
    return tax
