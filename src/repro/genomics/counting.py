"""K-mer counting substrates (exact and sketched).

Several of the Figure-1 pipelines count k-mer abundances rather than
just testing membership (stringMLST's allele calling, PhyMer's
haplogroup scoring, abundance-aware metagenomic profiling).  This module
provides both counting structures those tools use:

* :class:`ExactKmerCounter` — a dictionary counter (the memory-hungry
  reference implementation);
* :class:`CountMinSketch` — the streaming sketch large-scale tools
  switch to when exact counts no longer fit, with the classic
  overestimate-only guarantee: ``count <= estimate <= count + eps*N``
  with probability ``1 - delta``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

from .encoding import MAX_PACKED_K, iter_kmers, pack_kmers
from .sequence import DnaSequence


class CountingError(ValueError):
    """Raised on invalid counter parameters."""


class ExactKmerCounter:
    """Exact k-mer abundance counter."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise CountingError(f"k must be positive, got {k}")
        self.k = k
        self._counts: Dict[int, int] = {}
        self.total = 0

    def add(self, kmer: int, count: int = 1) -> None:
        if count <= 0:
            raise CountingError(f"count must be positive, got {count}")
        self._counts[kmer] = self._counts.get(kmer, 0) + count
        self.total += count

    def add_sequence(self, seq: DnaSequence) -> int:
        """Count every window of a sequence; returns k-mers added.

        Windows are packed and deduplicated in one vectorized pass; the
        counter dictionary is touched once per *distinct* k-mer, in
        first-occurrence order (identical to sequential insertion).
        """
        if self.k > MAX_PACKED_K:
            n = 0
            for kmer in iter_kmers(seq.bases, self.k):
                self.add(kmer)
                n += 1
            return n
        values = pack_kmers(seq.bases, self.k)
        if values.size == 0:
            return 0
        distinct, first_pos, counts = np.unique(
            values, return_index=True, return_counts=True
        )
        order = np.argsort(first_pos)
        for kmer, count in zip(
            distinct[order].tolist(), counts[order].tolist()
        ):
            self._counts[kmer] = self._counts.get(kmer, 0) + count
        self.total += int(values.size)
        return int(values.size)

    def count(self, kmer: int) -> int:
        return self._counts.get(kmer, 0)

    def __len__(self) -> int:
        return len(self._counts)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._counts.items())

    def most_common(self, n: int) -> List[Tuple[int, int]]:
        """Top-n (k-mer, count) pairs, count-descending."""
        if n <= 0:
            raise CountingError(f"n must be positive, got {n}")
        return sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def histogram(self) -> Dict[int, int]:
        """Abundance histogram: multiplicity -> number of distinct k-mers."""
        hist: Dict[int, int] = {}
        for count in self._counts.values():
            hist[count] = hist.get(count, 0) + 1
        return hist


def _mix64(value: int, seed: int) -> int:
    """Seeded splitmix64 finalizer."""
    value = (value + seed * 0x9E3779B97F4A7C15) % 2**64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) % 2**64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) % 2**64
    return value ^ (value >> 31)


class CountMinSketch:
    """Count-Min sketch over packed k-mers.

    Sized from the standard bounds: ``width = ceil(e / eps)`` counters
    per row and ``depth = ceil(ln(1 / delta))`` rows.
    """

    def __init__(self, epsilon: float = 1e-3, delta: float = 1e-3) -> None:
        if not 0.0 < epsilon < 1.0 or not 0.0 < delta < 1.0:
            raise CountingError("epsilon and delta must be in (0, 1)")
        self.epsilon = epsilon
        self.delta = delta
        self.width = math.ceil(math.e / epsilon)
        self.depth = math.ceil(math.log(1.0 / delta))
        self._table = np.zeros((self.depth, self.width), dtype=np.int64)
        self.total = 0

    def _slots(self, kmer: int) -> List[int]:
        return [_mix64(kmer, row + 1) % self.width for row in range(self.depth)]

    def add(self, kmer: int, count: int = 1) -> None:
        if count <= 0:
            raise CountingError(f"count must be positive, got {count}")
        for row, slot in enumerate(self._slots(kmer)):
            self._table[row, slot] += count
        self.total += count

    def add_sequence(self, seq: DnaSequence, k: int) -> int:
        # Packing is vectorized inside iter_kmers; the per-k-mer hashed
        # sketch update is inherently sequential.
        n = 0
        for kmer in iter_kmers(seq.bases, k):
            self.add(kmer)
            n += 1
        return n

    def estimate(self, kmer: int) -> int:
        """Point estimate: the minimum over the sketch rows."""
        return int(
            min(self._table[row, slot] for row, slot in enumerate(self._slots(kmer)))
        )

    def memory_bytes(self) -> int:
        return self._table.nbytes

    def error_bound(self) -> float:
        """Additive overestimate bound eps * N (holds w.p. 1 - delta)."""
        return self.epsilon * self.total


def count_reads(
    reads: Iterable[DnaSequence], k: int
) -> Tuple[ExactKmerCounter, CountMinSketch]:
    """Count a read set with both structures (comparison helper)."""
    exact = ExactKmerCounter(k)
    sketch = CountMinSketch()
    for read in reads:
        exact.add_sequence(read)
        sketch.add_sequence(read, k)
    return exact, sketch
