"""Sieve: scalable in-situ DRAM-based accelerator designs for massively
parallel k-mer matching — a full Python reproduction of the ISCA 2021
paper (Wu, Sharifi, Lenjani, Skadron, Venkat).

Package map
-----------
``repro.genomics``
    Encoding, sequences, FASTA/FASTQ, taxonomy, k-mer databases, and
    synthetic workload generation.
``repro.dram``
    DRAM timing/geometry/energy substrates, behavioral arrays, and
    command-ledger accounting.
``repro.hardware``
    Component cost models (paper Table III), technology scaling, area
    overheads, circuit feasibility checks.
``repro.sieve``
    The paper's contribution: column-wise layout, matchers, ETM, Column
    Finder, subarray index, the bit-accurate functional device, and the
    trace-driven performance models of Types 1-3.
``repro.baselines``
    Cache/CPU/GPU models plus from-scratch CLARK- and Kraken-style
    classifiers.
``repro.insitu``
    Ambit-style bulk-bitwise functional array and the row-major /
    ComputeDRAM analytic baselines.
``repro.interconnect``
    PCIe packet/queue model and DIMM envelope.
``repro.analysis`` / ``repro.experiments``
    Workload characterization and the per-figure benchmark harness.

Quick start
-----------
>>> from repro import build_dataset, SieveDevice
>>> ds = build_dataset(k=15, num_species=4, genome_length=400,
...                    num_reads=20, read_length=60, seed=1)
>>> device = SieveDevice.from_database(ds.database)
>>> kmer = next(ds.reads[0].kmers(ds.k))
>>> device.query([kmer])[0].payload == ds.database.get(kmer)
True

Every engine (device, software baselines, plain database) answers
through the same :class:`repro.api.QueryBackend` protocol —
``query()``/``classify()``/``capabilities()``/``stats()`` — and
``repro.service`` serves that protocol behind an asyncio micro-batching
dispatcher (``python -m repro.service --demo``).
"""

from .api import (
    BackendCapabilities,
    BackendResult,
    BackendStats,
    QueryBackend,
)
from .baselines import (
    ClarkClassifier,
    CpuBaselineModel,
    GpuBaselineModel,
    KrakenClassifier,
    classify_reads,
    summarize,
)
from .dram import SIEVE_32GB, DramGeometry, DramTiming, SIEVE_TIMING
from .genomics import (
    DnaSequence,
    KmerDatabase,
    Taxonomy,
    build_dataset,
    encode_kmer,
    decode_kmer,
)
from .pipeline import HostStageModel, PipelineReport, analyze_pipeline
from .serialization import (
    load_database,
    load_workload,
    save_database,
    save_workload,
)
from .sieve import (
    EspModel,
    SieveDevice,
    SieveModelConfig,
    SubarrayLayout,
    Type1Model,
    Type2Model,
    Type3Model,
    WorkloadStats,
)

__version__ = "1.0.0"

__all__ = [
    "BackendCapabilities",
    "BackendResult",
    "BackendStats",
    "QueryBackend",
    "ClarkClassifier",
    "CpuBaselineModel",
    "GpuBaselineModel",
    "KrakenClassifier",
    "classify_reads",
    "summarize",
    "SIEVE_32GB",
    "SIEVE_TIMING",
    "DramGeometry",
    "DramTiming",
    "DnaSequence",
    "KmerDatabase",
    "Taxonomy",
    "build_dataset",
    "encode_kmer",
    "decode_kmer",
    "HostStageModel",
    "PipelineReport",
    "analyze_pipeline",
    "load_database",
    "load_workload",
    "save_database",
    "save_workload",
    "EspModel",
    "SieveDevice",
    "SieveModelConfig",
    "SubarrayLayout",
    "Type1Model",
    "Type2Model",
    "Type3Model",
    "WorkloadStats",
    "__version__",
]
