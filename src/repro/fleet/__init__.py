"""Process-parallel experiment fleet (see docs/TESTING.md).

Decomposes figures/tables/sweeps into pure, picklable :class:`Job`
units, dispatches them over a process pool with deterministic per-job
seeds and an optional on-disk result cache, and merges payloads in
submission order so ``--jobs 1`` and ``--jobs N`` produce byte-identical
output.  ``python -m repro.fleet`` is the CLI; the golden-result suite
(``tests/golden/``) pins every experiment's serialized payload.
"""

from .core import (
    CACHE_ENV_VAR,
    JOBS_ENV_VAR,
    PAYLOAD_SCHEMA,
    FleetError,
    Job,
    ResultCache,
    configure,
    default_cache,
    default_jobs,
    derive_seed,
    fork_context,
    job_digest,
    run_jobs,
    sanitize_active,
    worker_init,
)
from .golden import (
    DEFAULT_GOLDEN_DIR,
    GoldenDiff,
    GoldenError,
    GoldenReport,
    canonical_json,
    check_goldens,
    diff_payloads,
    figure_payload,
    golden_names,
    golden_path,
    load_golden,
    payload_to_figure,
    update_goldens,
)
from .jobs import (
    BenchJob,
    ClusterReplayJob,
    DeviceSimJob,
    EspAblationJob,
    ExperimentJob,
    PerfPointJob,
    SanitizerProbeJob,
    SegmentLookupJob,
    SteadyStateJob,
    TraceReplayJob,
    Type1FunctionalJob,
)

__all__ = [
    "CACHE_ENV_VAR",
    "JOBS_ENV_VAR",
    "PAYLOAD_SCHEMA",
    "FleetError",
    "Job",
    "ResultCache",
    "configure",
    "default_cache",
    "default_jobs",
    "derive_seed",
    "fork_context",
    "job_digest",
    "run_jobs",
    "sanitize_active",
    "worker_init",
    "DEFAULT_GOLDEN_DIR",
    "GoldenDiff",
    "GoldenError",
    "GoldenReport",
    "canonical_json",
    "check_goldens",
    "diff_payloads",
    "figure_payload",
    "golden_names",
    "golden_path",
    "load_golden",
    "payload_to_figure",
    "update_goldens",
    "BenchJob",
    "ClusterReplayJob",
    "DeviceSimJob",
    "EspAblationJob",
    "ExperimentJob",
    "PerfPointJob",
    "SanitizerProbeJob",
    "SegmentLookupJob",
    "SteadyStateJob",
    "TraceReplayJob",
    "Type1FunctionalJob",
]
