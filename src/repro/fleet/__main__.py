"""Fleet CLI: run experiments in parallel, maintain the golden suite.

Examples::

    python -m repro.fleet --list
    python -m repro.fleet fig14 claims --jobs 4
    python -m repro.fleet --check-goldens --jobs 4
    python -m repro.fleet --update-goldens

``--update-goldens`` runs every selected experiment twice and refuses
to record a golden whose two runs serialize differently — an unstable
experiment is a bug to fix, not a golden to store.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from ..experiments.registry import EXPERIMENTS
from . import core, golden
from .jobs import ExperimentJob


def _select(names: List[str]) -> List[str]:
    if not names:
        return list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise core.FleetError(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"known: {', '.join(EXPERIMENTS)}"
        )
    return names


def _payloads(names: List[str], jobs: Optional[int]) -> Dict[str, Dict[str, Any]]:
    """Run the named experiments (parallel across experiments)."""
    results = core.run_jobs(
        [ExperimentJob(name) for name in names], max_workers=jobs
    )
    return dict(zip(names, results))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Process-parallel experiment runner and golden-suite "
        "maintenance (docs/TESTING.md).",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help="experiment names (default: all registered experiments)",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="EXPERIMENT",
        help="run only this experiment (repeatable; merged with the "
        "positional list)",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=None,
        help=f"worker processes (default: ${core.JOBS_ENV_VAR} or 1)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment names and exit"
    )
    parser.add_argument(
        "--update-goldens", action="store_true",
        help="regenerate tests/golden/*.json (double-run stability check)",
    )
    parser.add_argument(
        "--check-goldens", action="store_true",
        help="compare fresh payloads against stored goldens; exit 1 on drift",
    )
    parser.add_argument(
        "--golden-dir", default=str(golden.DEFAULT_GOLDEN_DIR),
        help="golden directory (default: %(default)s)",
    )
    parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help=f"on-disk result cache directory (default: ${core.CACHE_ENV_VAR})",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="install the DRAM protocol sanitizer (parent and workers)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    if args.sanitize:
        from ..analysiskit import enable_sanitizer

        enable_sanitizer()
    if args.cache is not None:
        core.configure(jobs=args.jobs, cache_dir=args.cache)
        args.jobs = None  # configured; run_jobs picks it up

    names = _select(args.experiments + (args.only or []))

    if args.update_goldens:
        first = _payloads(names, args.jobs)
        replay = _payloads(names, args.jobs)
        report = golden.update_goldens(
            first, args.golden_dir, stability_payloads=replay
        )
        print(report.summary())
        if report.written:
            print(f"wrote {len(report.written)} golden(s) to {args.golden_dir}")
        return 0

    if args.check_goldens:
        payloads = _payloads(names, args.jobs)
        report = golden.check_goldens(payloads, args.golden_dir)
        print(report.summary())
        return 1 if report.changed else 0

    payloads = _payloads(names, args.jobs)
    for name in names:
        print(golden.payload_to_figure(payloads[name]).format())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
