"""Golden-result regression layer for the experiment registry.

``tests/golden/<name>.json`` stores the canonical serialized payload of
every registry experiment.  The pytest suite (``tests/test_golden.py``)
replays each experiment at ``--jobs 1`` and ``--jobs 4`` and asserts
the serialized output is byte-identical to the golden — so process
parallelism (or any refactor) can never silently change a reproduced
number.  ``python -m repro.fleet --update-goldens`` regenerates the
files with a diff summary; the updater runs every experiment twice and
refuses to write a golden whose two runs disagree (a nondeterministic
experiment is a bug, not a golden).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..experiments.results import FigureResult

#: Default golden directory, relative to the repository root (the fleet
#: CLI resolves it against the current working directory).
DEFAULT_GOLDEN_DIR = Path("tests") / "golden"


class GoldenError(ValueError):
    """Raised on unstable experiments or malformed golden files."""


def _canonical_cell(cell: Any) -> Any:
    """Normalize one table cell to a JSON-native value.

    Numpy scalars unwrap to their Python equivalents (so a payload
    computed via numpy serializes identically to one computed with
    plain floats); everything else must already be JSON-native.
    """
    if hasattr(cell, "item") and type(cell).__module__ == "numpy":
        return cell.item()
    if isinstance(cell, (bool, int, float, str)) or cell is None:
        return cell
    return str(cell)


def figure_payload(result: FigureResult) -> Dict[str, Any]:
    """Canonical JSON-native payload of one :class:`FigureResult`."""
    return {
        "figure": result.figure,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [[_canonical_cell(c) for c in row] for row in result.rows],
        "notes": result.notes,
    }


def payload_to_figure(payload: Dict[str, Any]) -> FigureResult:
    """Rebuild a :class:`FigureResult` from its canonical payload."""
    return FigureResult(
        figure=payload["figure"],
        title=payload["title"],
        headers=list(payload["headers"]),
        rows=[list(row) for row in payload["rows"]],
        notes=payload["notes"],
    )


def canonical_json(payload: Dict[str, Any]) -> str:
    """The byte representation goldens store and tests compare."""
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def golden_path(name: str, directory: Union[str, Path]) -> Path:
    return Path(directory) / f"{name}.json"


def load_golden(name: str, directory: Union[str, Path]) -> Dict[str, Any]:
    path = golden_path(name, directory)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise GoldenError(f"cannot read golden {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise GoldenError(f"golden {path} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or "rows" not in payload:
        raise GoldenError(f"golden {path} is not a figure payload")
    return payload


def golden_names(directory: Union[str, Path]) -> List[str]:
    """Experiments with a stored golden, sorted by name."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(p.stem for p in root.glob("*.json"))


@dataclass
class GoldenDiff:
    """Summary of one experiment's payload vs. its stored golden."""

    name: str
    status: str  # "unchanged" | "changed" | "new"
    detail: str = ""
    cell_diffs: int = 0

    def describe(self) -> str:
        if self.status == "unchanged":
            return f"{self.name}: unchanged"
        if self.status == "new":
            return f"{self.name}: new golden"
        return f"{self.name}: CHANGED ({self.detail})"


def diff_payloads(
    name: str, old: Optional[Dict[str, Any]], new: Dict[str, Any]
) -> GoldenDiff:
    """Structural diff summary between a stored and a fresh payload."""
    if old is None:
        return GoldenDiff(name, "new")
    if canonical_json(old) == canonical_json(new):
        return GoldenDiff(name, "unchanged")
    parts: List[str] = []
    for key in ("figure", "title", "notes"):
        if old.get(key) != new.get(key):
            parts.append(f"{key} changed")
    if old.get("headers") != new.get("headers"):
        parts.append("headers changed")
    old_rows = old.get("rows", [])
    new_rows = new.get("rows", [])
    cells = 0
    if len(old_rows) != len(new_rows):
        parts.append(f"row count {len(old_rows)} -> {len(new_rows)}")
    else:
        for old_row, new_row in zip(old_rows, new_rows):
            if len(old_row) != len(new_row):
                cells += max(len(old_row), len(new_row))
                continue
            cells += sum(1 for a, b in zip(old_row, new_row) if a != b)
        if cells:
            parts.append(f"{cells} cell(s) differ")
    return GoldenDiff(name, "changed", "; ".join(parts) or "content differs",
                      cell_diffs=cells)


@dataclass
class GoldenReport:
    """Outcome of an update or check pass over many experiments."""

    diffs: List[GoldenDiff] = field(default_factory=list)
    written: List[str] = field(default_factory=list)

    @property
    def changed(self) -> List[GoldenDiff]:
        return [d for d in self.diffs if d.status != "unchanged"]

    def summary(self) -> str:
        counts = {"unchanged": 0, "changed": 0, "new": 0}
        for diff in self.diffs:
            counts[diff.status] += 1
        lines = [
            f"goldens: {counts['unchanged']} unchanged, "
            f"{counts['changed']} changed, {counts['new']} new"
        ]
        lines += [d.describe() for d in self.diffs if d.status != "unchanged"]
        return "\n".join(lines)


def update_goldens(
    payloads: Dict[str, Dict[str, Any]],
    directory: Union[str, Path],
    stability_payloads: Optional[Dict[str, Dict[str, Any]]] = None,
) -> GoldenReport:
    """Write fresh payloads as goldens; returns the diff report.

    When ``stability_payloads`` (a second independent run) is given,
    any experiment whose two runs serialize differently raises
    :class:`GoldenError` instead of writing an unstable golden.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    report = GoldenReport()
    for name in sorted(payloads):
        payload = payloads[name]
        if stability_payloads is not None:
            replay = stability_payloads.get(name)
            if replay is None or canonical_json(replay) != canonical_json(payload):
                raise GoldenError(
                    f"experiment {name!r} is nondeterministic: two runs "
                    "produced different serialized output; fix the "
                    "divergence before recording a golden"
                )
        path = golden_path(name, root)
        old: Optional[Dict[str, Any]] = None
        if path.exists():
            old = load_golden(name, root)
        diff = diff_payloads(name, old, payload)
        report.diffs.append(diff)
        if diff.status != "unchanged":
            path.write_text(canonical_json(payload), encoding="utf-8")
            report.written.append(name)
    return report


def check_goldens(
    payloads: Dict[str, Dict[str, Any]], directory: Union[str, Path]
) -> GoldenReport:
    """Compare fresh payloads against stored goldens without writing."""
    report = GoldenReport()
    for name in sorted(payloads):
        old = None
        if golden_path(name, directory).exists():
            old = load_golden(name, directory)
        report.diffs.append(diff_payloads(name, old, payloads[name]))
    return report
