"""Process-parallel job runner with deterministic merge and result cache.

The experiment layer decomposes every figure/table/sweep into pure,
picklable :class:`Job` units (design config x workload x sweep point).
This module dispatches them:

* **inline** at ``--jobs 1`` (the default) — no pool, no pickling, the
  exact sequential execution the repository always had;
* **process-parallel** at ``--jobs N`` over a
  :class:`concurrent.futures.ProcessPoolExecutor` — results come back
  in submission order, so the merged output is byte-identical to the
  inline run regardless of worker count.

Three invariants make ``--jobs 1`` equivalent to ``--jobs N``:

1. Jobs are *pure*: a job's payload is a function of its dataclass
   fields only.  Any randomness must come from the ``seed`` argument of
   :meth:`Job.run`, which is derived from a stable content hash of the
   job key (:func:`derive_seed`) — never from global RNG state.
2. Merge order is submission order (``ProcessPoolExecutor.map``
   preserves it), and floats survive pickling bit-exactly.
3. Workers never nest pools: a ``run_jobs`` call inside a worker runs
   inline, so parallelism applies at the outermost fan-out only.

Workers inherit the parent's sanitizers: when the parent has a
:class:`~repro.analysiskit.ProtocolSanitizer` installed (or
``SIEVE_SANITIZE`` requests one), every worker installs its own DRAM
protocol sanitizer into the :mod:`repro.dram.hooks` seam — plus a
:class:`~repro.analysiskit.ScheduleSanitizer` into
:mod:`repro.service.hooks` — before running jobs, and a
:class:`~repro.analysiskit.SanitizerError` raised in a worker
propagates to the parent with the offending history intact.

The optional on-disk result cache keys each payload by a content hash
of (job key, repro version, payload schema) — see :class:`ResultCache`.
Enable it with ``SIEVE_FLEET_CACHE=<dir>`` or ``--cache`` on the fleet
CLI; it is off by default so stale results can never leak into a run
that did not ask for them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, ClassVar, Dict, List, Optional, Sequence, Union

#: Environment variable read by :func:`default_jobs`.
JOBS_ENV_VAR = "SIEVE_JOBS"

#: Environment variable read by :func:`default_cache`.
CACHE_ENV_VAR = "SIEVE_FLEET_CACHE"

#: Bump when the payload schema of any job type changes incompatibly;
#: part of every cache digest.
PAYLOAD_SCHEMA = 1


class FleetError(ValueError):
    """Raised on invalid fleet configuration or job definitions."""


@dataclasses.dataclass(frozen=True)
class Job:
    """Base class for one pure, picklable unit of experiment work.

    Subclasses are frozen dataclasses whose fields are scalars/tuples
    (picklable, reprable); :meth:`run` must depend only on those fields
    and the passed ``seed``.  The payload must be JSON-serializable so
    it can be cached and golden-diffed.
    """

    #: Class-level switch: wall-clock measurements (benchmarks) and
    #: probe jobs must never be served from the cache.
    cacheable: ClassVar[bool] = True

    def key(self) -> str:
        """Stable identity string: type name + every dataclass field."""
        fields = ",".join(
            f"{f.name}={getattr(self, f.name)!r}"
            for f in dataclasses.fields(self)
        )
        return f"{type(self).__name__}({fields})"

    def run(self, seed: int) -> Any:
        raise NotImplementedError

    def cache_token(self) -> str:
        """Extra content folded into the cache digest (default: none).

        Jobs whose inputs live *outside* their dataclass fields — e.g.
        a database segment directory referenced by path — return a
        content hash of that input here, so two paths with identical
        content share cache entries and an edited file under the same
        path gets a fresh one.
        """
        return ""


def derive_seed(key: str) -> int:
    """Deterministic 63-bit seed from a job key (stable content hash).

    Never consults global RNG state (rule SV004): the same job key
    yields the same seed in every process, interpreter, and run.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def job_digest(job: Job, version: str) -> str:
    """Cache digest: content hash of (job key, repro version, schema).

    A non-empty :meth:`Job.cache_token` (content hash of out-of-band
    inputs such as database segment directories) is folded in; jobs
    without one keep their historical digests.
    """
    text = f"{job.key()}|version={version}|schema={PAYLOAD_SCHEMA}"
    token = job.cache_token()
    if token:
        text += f"|token={token}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk JSON store of job payloads keyed by content digest.

    Writes are atomic (temp file + ``os.replace``), so concurrent
    workers racing on the same digest leave a complete file with the
    same deterministic content either way.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached entry (``{"job", "version", "payload"}``) or None."""
        path = self._path(digest)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(entry, dict) or "payload" not in entry:
            return None
        return entry

    def put(self, digest: str, job: Job, payload: Any, version: str) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"job": job.key(), "version": version, "payload": payload}
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        # fsync before the rename: os.replace is atomic against *other
        # processes*, but after a crash the directory entry can point at
        # a file whose data never reached disk (a truncated entry the
        # next run would have to discard).  Flush the bytes first so the
        # rename only ever publishes a complete entry.
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)


# ---------------------------------------------------------------------------
# Configuration (worker count, cache)
# ---------------------------------------------------------------------------

_configured_jobs: Optional[int] = None
_configured_cache: Optional[ResultCache] = None
_cache_configured = False
#: Set in every pool worker: nested run_jobs calls run inline.
_in_worker = False


def configure(
    jobs: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> None:
    """Set the session-wide default worker count and/or cache directory.

    ``configure(jobs=None)`` resets to the environment default
    (``SIEVE_JOBS``, else 1); ``cache_dir=None`` resets to
    ``SIEVE_FLEET_CACHE``.  The CLIs call this once from their parsed
    arguments so experiment runners never thread the knobs explicitly.
    """
    global _configured_jobs, _configured_cache, _cache_configured
    if jobs is not None and jobs < 1:
        raise FleetError(f"jobs must be >= 1, got {jobs}")
    _configured_jobs = jobs
    _configured_cache = ResultCache(cache_dir) if cache_dir is not None else None
    _cache_configured = cache_dir is not None


def default_jobs() -> int:
    """Active worker count: configured value, else ``SIEVE_JOBS``, else 1."""
    if _configured_jobs is not None:
        return _configured_jobs
    raw = os.environ.get(JOBS_ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise FleetError(f"{JOBS_ENV_VAR}={raw!r} is not an integer") from None
    if value < 1:
        raise FleetError(f"{JOBS_ENV_VAR} must be >= 1, got {value}")
    return value


def default_cache() -> Optional[ResultCache]:
    """Active result cache: configured directory, else ``SIEVE_FLEET_CACHE``."""
    if _cache_configured:
        return _configured_cache
    raw = os.environ.get(CACHE_ENV_VAR, "").strip()
    return ResultCache(raw) if raw else None


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _sanitize_active() -> bool:
    """Whether workers must install the DRAM protocol sanitizer."""
    from ..analysiskit import active_sanitizer, sanitize_requested

    return active_sanitizer() is not None or sanitize_requested()


def _worker_init(sanitize: bool) -> None:
    """Per-worker setup: mark nesting, forward the sanitizer."""
    global _in_worker
    _in_worker = True
    if sanitize:
        os.environ["SIEVE_SANITIZE"] = "1"
        from ..analysiskit import enable_sanitizer, enable_schedule_sanitizer

        enable_sanitizer()
        enable_schedule_sanitizer()


def _execute(job: Job) -> Any:
    """Run one job with its derived seed (runs in the worker process)."""
    return job.run(derive_seed(job.key()))


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap workers, test-defined jobs resolvable); fall
    back to the platform default elsewhere."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def fork_context() -> multiprocessing.context.BaseContext:
    """The fleet's process-spawn context (fork-preferred), public.

    The seam :mod:`repro.cluster` builds its shard-worker processes on:
    fork keeps worker start cheap and — critically for the cluster —
    lets a child inherit the parent's module state (test-defined
    classes resolve, the mmap'd segment pages stay shared
    copy-on-write).
    """
    return _pool_context()


def worker_init(sanitize: bool) -> None:
    """Per-forked-process setup (public counterpart of the pool
    initializer): mark fleet nesting so a worker never nests another
    pool, and re-install both runtime sanitizers when the parent ran
    sanitized."""
    _worker_init(sanitize)


def sanitize_active() -> bool:
    """Whether forked workers should install the sanitizers (public)."""
    return _sanitize_active()


def run_jobs(
    jobs: Sequence[Job],
    max_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
) -> List[Any]:
    """Run every job; payloads return in submission order.

    ``max_workers=None`` uses :func:`default_jobs`.  With one worker —
    or inside a fleet worker (no nested pools) — jobs run inline in the
    calling process; otherwise they fan out over a process pool.  Both
    paths yield byte-identical merged results.

    Cache lookups happen in the parent before dispatch; only misses are
    executed.  An exception raised by any job (including
    ``SanitizerError`` from a worker's protocol sanitizer) propagates
    to the caller.
    """
    jobs = list(jobs)
    version = _repro_version()
    store = (cache if cache is not None else default_cache()) if use_cache else None
    results: List[Any] = [None] * len(jobs)
    pending: List[int] = []
    digests: Dict[int, str] = {}
    for i, job in enumerate(jobs):
        if store is not None and job.cacheable:
            digests[i] = job_digest(job, version)
            entry = store.get(digests[i])
            if entry is not None:
                results[i] = entry["payload"]
                continue
        pending.append(i)

    workers = max_workers if max_workers is not None else default_jobs()
    if workers < 1:
        raise FleetError(f"max_workers must be >= 1, got {workers}")
    if workers == 1 or len(pending) <= 1 or _in_worker:
        for i in pending:
            results[i] = _execute(jobs[i])
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending)),
            mp_context=_pool_context(),
            initializer=_worker_init,
            initargs=(_sanitize_active(),),
        ) as pool:
            for i, payload in zip(pending, pool.map(_execute, [jobs[i] for i in pending])):
                results[i] = payload
    if store is not None:
        for i in pending:
            if jobs[i].cacheable:
                store.put(digests[i], jobs[i], results[i], version)
    return results


def _repro_version() -> str:
    from .. import __version__

    return __version__
