"""Concrete fleet job types: the pure units experiments decompose into.

Each job is a frozen dataclass of scalars (picklable, reprable), and
``run`` imports what it needs lazily so job objects ship to workers
without dragging the whole simulator through pickle.  Payloads are
JSON-serializable dicts — the merge layer (and the on-disk cache, and
the golden differ) never sees a live model object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Tuple

from .core import FleetError, Job

#: Ranks of the preset capacity-sweep geometries
#: (``repro.dram.geometry.SIEVE_{4,8,16,32}GB``).
PRESET_RANKS: Dict[float, int] = {4.0: 2, 8.0: 4, 16.0: 8, 32.0: 16}

#: Designs accepted by :class:`PerfPointJob`.  ``units`` is compute
#: buffers per bank for T2 and concurrent subarrays for T3 /
#: ROW_MAJOR / COMPUTE_DRAM; CPU / GPU / T1 take none.
PERF_DESIGNS = ("CPU", "GPU", "T1", "T2", "T3", "ROW_MAJOR", "COMPUTE_DRAM")


@dataclass(frozen=True)
class PerfPointJob(Job):
    """One (design x workload x sweep point) analytic model evaluation.

    Covers every point of Figures 13-17, the Section VI-C
    sensitivities, the claims ledger, and the k / hit-rate / capacity
    sweeps: the job owns model construction end to end, so two jobs
    with equal fields produce bit-identical payloads in any process.
    """

    design: str
    benchmark: str
    units: int = 0
    etm_enabled: bool = True
    capacity_gib: float = 32.0
    ranks: int = 0
    #: Workload hit-rate override; negative means the benchmark default.
    hit_rate: float = -1.0
    #: k-mer length override (0 = the paper's k); builds the
    #: ``sensitivity_k``-style workload with the default-head ESP.
    k: int = 0

    def __post_init__(self) -> None:
        if self.design not in PERF_DESIGNS:
            raise FleetError(
                f"unknown design {self.design!r}; known: {PERF_DESIGNS}"
            )

    def _geometry(self) -> Any:
        from ..dram.geometry import DramGeometry

        ranks = self.ranks or PRESET_RANKS.get(self.capacity_gib, 0)
        if ranks <= 0:
            raise FleetError(
                f"capacity {self.capacity_gib} GiB has no preset rank "
                "count; set ranks explicitly"
            )
        return DramGeometry.for_capacity(self.capacity_gib, ranks=ranks)

    def _workload(self) -> Any:
        from ..experiments.workloads import benchmark_by_name
        from ..sieve.perfmodel import EspModel, WorkloadStats

        bench = benchmark_by_name(self.benchmark)
        if self.k:
            workload = WorkloadStats(
                name=f"{bench.name}.k{self.k}",
                k=self.k,
                num_kmers=bench.profile.kmer_count(self.k),
                hit_rate=bench.hit_rate,
                esp=EspModel.paper_fig6(self.k),
            )
        else:
            workload = bench.workload()
        if self.hit_rate >= 0.0:
            workload = workload.with_hit_rate(self.hit_rate)
        return workload

    def _model(self) -> Any:
        from ..baselines.cpu_model import CpuBaselineModel
        from ..baselines.gpu_model import GpuBaselineModel
        from ..insitu.rowmajor import ComputeDramModel, RowMajorModel
        from ..sieve.perfmodel import (
            SieveModelConfig,
            Type1Model,
            Type2Model,
            Type3Model,
        )

        if self.design == "CPU":
            return CpuBaselineModel()
        if self.design == "GPU":
            return GpuBaselineModel()
        cfg = SieveModelConfig(geometry=self._geometry())
        if self.design == "T1":
            return Type1Model(cfg, etm_enabled=self.etm_enabled)
        if self.design == "T2":
            return Type2Model(cfg, self.units, etm_enabled=self.etm_enabled)
        if self.design == "T3":
            return Type3Model(cfg, self.units, etm_enabled=self.etm_enabled)
        if self.design == "ROW_MAJOR":
            return RowMajorModel(cfg, self.units)
        return ComputeDramModel(cfg, self.units)

    def run(self, seed: int) -> Dict[str, Any]:
        result = self._model().run(self._workload())
        return {
            "design": result.design,
            "workload": result.workload,
            "time_s": result.time_s,
            "energy_j": result.energy_j,
            "breakdown": dict(result.breakdown),
        }


@dataclass(frozen=True)
class SteadyStateJob(Job):
    """One row of Ablation A1: event-driven pipeline vs. closed form."""

    streams: int
    num_requests: int = 4000

    def run(self, seed: int) -> Dict[str, Any]:
        from ..experiments.workloads import PAPER_K, paper_benchmarks
        from ..sieve.controller import validate_steady_state
        from ..sieve.layout import SubarrayLayout

        workload = paper_benchmarks()[-1].workload()
        layout = SubarrayLayout(k=PAPER_K)
        report = validate_steady_state(
            workload, layout, streams=self.streams,
            num_requests=self.num_requests,
        )
        return {key: float(value) for key, value in report.items()}


@dataclass(frozen=True)
class EspAblationJob(Job):
    """One candidate ETM termination distribution (Ablation A2)."""

    label: str
    probabilities: Tuple[float, ...]

    def run(self, seed: int) -> Dict[str, Any]:
        from ..experiments.workloads import paper_benchmarks
        from ..sieve.perfmodel import EspModel, Type3Model, WorkloadStats

        base = paper_benchmarks()[-1].workload()
        esp = EspModel(tuple(self.probabilities))
        workload = WorkloadStats(
            name=base.name, k=base.k, num_kmers=base.num_kmers,
            hit_rate=base.hit_rate, esp=esp,
        )
        result = Type3Model(concurrent_subarrays=8).run(workload)
        return {
            "label": self.label,
            "mean_rows": esp.mean_rows(),
            "time_s": result.time_s,
        }


@dataclass(frozen=True)
class DeviceSimJob(Job):
    """One bank count of Ablation A6: whole-device event simulation."""

    banks: int
    subarrays_per_bank: int = 16
    num_requests: int = 20_000

    def run(self, seed: int) -> Dict[str, Any]:
        from ..experiments.workloads import paper_benchmarks
        from ..sieve.device_sim import DeviceSimConfig, simulate_device

        workload = paper_benchmarks()[-1].workload()
        sim = simulate_device(
            workload,
            num_requests=self.num_requests,
            config=DeviceSimConfig(
                banks=self.banks, subarrays_per_bank=self.subarrays_per_bank
            ),
        )
        return {
            "overhead_fraction": sim.overhead_fraction,
            "load_imbalance": sim.load_imbalance,
            "packets": sim.packets,
            "makespan_ns": sim.makespan_ns,
        }


@dataclass(frozen=True)
class Type1FunctionalJob(Job):
    """Ablation A5: bit-accurate Type-1 bank-simulator counters.

    The internal seed (23) is part of the published golden numbers, so
    it stays fixed rather than deriving from the fleet seed.
    """

    queries: int = 120

    def run(self, seed: int) -> Dict[str, Any]:
        import numpy as np

        from ..sieve.type1 import Type1BankSim, Type1Layout

        rng = np.random.default_rng(23)
        k = 8
        layout = Type1Layout(k=k, row_bits=128, rows=128)
        kmers = sorted(
            int(x) for x in rng.choice(4**k, size=110, replace=False)
        )
        records = [(kmer, 900 + i) for i, kmer in enumerate(kmers)]
        sim = Type1BankSim(layout, records)
        rows_list, batches_list, hits = [], [], 0
        for _ in range(self.queries):
            q = int(rng.integers(0, 4**k))
            outcome = sim.match(q)
            rows_list.append(outcome.rows_activated)
            batches_list.append(outcome.batch_reads)
            hits += outcome.hit
        return {
            "queries": self.queries,
            "hit_rate": hits / self.queries,
            "mean_rows": float(np.mean(rows_list)),
            "max_rows": layout.kmer_rows + 2,
            "mean_batch_reads": float(np.mean(batches_list)),
            "full_batches": layout.kmer_rows * layout.num_batches,
        }


@dataclass(frozen=True)
class SegmentLookupJob(Job):
    """Bit-accurate device lookups against an mmap-opened segment image.

    The worker opens the reference database read-only via
    :meth:`~repro.genomics.KmerDatabase.open_mmap` — no per-process
    build, the mapped pages are shared — loads it into a Sieve device
    and runs a deterministic query mix (half present keys, half random
    probes).  The cache digest folds in the segment *content hash*
    (:meth:`cache_token`), so results cache by what the directory holds,
    not where it lives.
    """

    db_segments: str = ""
    num_queries: int = 200
    kernel: str = "packed"

    def key(self) -> str:
        """Identity by segment *content*, not location: two directories
        holding byte-identical segments yield the same key (same derived
        seed, same cache digest); an edited directory yields a new one."""
        return (
            f"{type(self).__name__}("
            f"db_segments=<content:{self.cache_token()}>,"
            f"num_queries={self.num_queries!r},kernel={self.kernel!r})"
        )

    def cache_token(self) -> str:
        from ..serialization import read_segment_manifest

        return str(read_segment_manifest(self.db_segments)["content_hash"])

    def run(self, seed: int) -> Dict[str, Any]:
        import numpy as np

        from ..genomics import KmerDatabase
        from ..sieve import SieveDevice

        database = KmerDatabase.open_mmap(self.db_segments)
        device = SieveDevice.from_database(database)
        rng = np.random.default_rng(seed % 2**31)
        keys = database.sorted_kmers()
        present = [
            keys[int(i)]
            for i in rng.integers(0, len(keys), size=self.num_queries // 2)
        ]
        probes = [
            int(x)
            for x in rng.integers(0, 4**database.k, size=self.num_queries // 2)
        ]
        responses = device.query(present + probes, kernel=self.kernel)
        return {
            "db_records": len(database),
            "queries": device.stats.queries,
            "hits": device.stats.hits,
            "row_activations": device.stats.row_activations,
            "write_commands": device.stats.write_commands,
            "batches": device.stats.batches,
            "responses": len(responses),
        }


#: Functional designs accepted by :class:`FaultSweepJob`.
FAULT_DESIGNS = ("database", "sieve", "type1", "rowmajor")


@dataclass(frozen=True)
class FaultSweepJob(Job):
    """One (design x bit-flip rate) point of the fault-injection sweep.

    Builds a shared synthetic dataset, derives a :class:`repro.faults.
    FaultModel` whose seed depends only on ``(seed_tag, bit_flip_rate)``
    — *not* on the design — so every design at a given rate runs under
    the identically-seeded fault schedule, then measures per-query
    answer accuracy against the fault-free database truth.
    """

    design: str
    bit_flip_rate: float = 0.0
    num_species: int = 4
    genome_length: int = 400
    num_reads: int = 16
    kmers_per_read: int = 30
    k: int = 10
    seed_tag: str = "fault-sweep"

    def __post_init__(self) -> None:
        if self.design not in FAULT_DESIGNS:
            raise FleetError(
                f"unknown design {self.design!r}; known: {FAULT_DESIGNS}"
            )

    def _dataset(self) -> Any:
        from ..faults import hash_seed
        from ..genomics import build_dataset

        # Dataset seed depends on the tag only: every (design, rate)
        # point of one sweep sees the same references and reads.
        return build_dataset(
            k=self.k,
            num_species=self.num_species,
            genome_length=self.genome_length,
            num_reads=self.num_reads,
            seed=hash_seed(self.seed_tag, "dataset") % 2**31,
        )

    def _backend(self, database: Any, injector: Any) -> Any:
        from ..faults import fault_injection, faulted_database
        from ..insitu.rowmajor import RowMajorMatcher
        from ..sieve.device import SieveDevice
        from ..sieve.type1 import Type1BankSim, Type1Layout

        if self.design == "database":
            if not injector.model.active:
                return database
            return faulted_database(database, injector)
        with fault_injection(injector):
            if self.design == "sieve":
                return SieveDevice.from_database(database)
            if self.design == "type1":
                return Type1BankSim(
                    Type1Layout(k=self.k), database.sorted_records()
                )
            return RowMajorMatcher(self.k, database.sorted_records())

    def run(self, seed: int) -> Dict[str, Any]:
        from ..faults import FaultInjector, FaultModel, hash_seed

        dataset = self._dataset()
        database = dataset.database
        queries = [
            kmer
            for read in dataset.reads
            for kmer in list(read.kmers(self.k))[: self.kmers_per_read]
        ]
        truth = [database.get(q) for q in queries]
        model = FaultModel(
            bit_flip_rate=self.bit_flip_rate,
            seed=hash_seed(self.seed_tag, "rate", self.bit_flip_rate),
        )
        injector = FaultInjector(model)
        backend = self._backend(database, injector)
        if self.design == "type1":
            outcomes = [backend.match(q) for q in queries]
            answers = [(o.hit, o.payload) for o in outcomes]
        else:
            answers = [
                (r.hit, r.payload) for r in backend.query(queries)
            ]
        false_miss = false_hit = wrong_payload = 0
        for (hit, payload), expected in zip(answers, truth):
            if expected is None:
                false_hit += hit
            elif not hit:
                false_miss += 1
            elif payload != expected:
                wrong_payload += 1
        correct = len(queries) - false_miss - false_hit - wrong_payload
        stats = injector.stats
        return {
            "design": self.design,
            "bit_flip_rate": self.bit_flip_rate,
            "queries": len(queries),
            "accuracy": correct / len(queries),
            "false_miss": false_miss,
            "false_hit": false_hit,
            "wrong_payload": wrong_payload,
            "bits_flipped": stats.bits_flipped,
            "records_corrupted": stats.records_corrupted,
            "schedule_digest": injector.schedule_digest()[:16],
        }


@dataclass(frozen=True)
class MappingSweepJob(Job):
    """One (seed length x bit-flip rate) point of the mapping sweep.

    Mirrors :class:`FaultSweepJob`'s seeding discipline: the dataset
    and the planted reads depend only on ``seed_tag`` (every sweep
    point maps the *same* reads against the same references), and the
    :class:`repro.faults.FaultModel` seed depends on ``(seed_tag,
    bit_flip_rate)`` — never on the seed length — so every ``seed_k``
    at a given rate runs under the identically-seeded fault schedule.

    Reads are planted reference windows with i.i.d. substitution
    errors, so the true ``(genome, position)`` of every read is known
    exactly and the payload reports *location* recall, not just a
    mapped fraction: faults corrupt the Sieve filter (false seed
    misses/hits), longer seeds tolerate fewer errors per window, and
    the sweep tabulates both sensitivities at once.
    """

    seed_k: int = 11
    bit_flip_rate: float = 0.0
    num_species: int = 4
    genome_length: int = 400
    num_reads: int = 24
    read_length: int = 60
    error_rate: float = 0.05
    band: int = 3
    seed_tag: str = "mapping-sweep"

    def __post_init__(self) -> None:
        if self.read_length < self.seed_k:
            raise FleetError(
                f"read_length={self.read_length} shorter than "
                f"seed_k={self.seed_k}"
            )

    def _dataset(self) -> Any:
        from ..faults import hash_seed
        from ..genomics import build_dataset

        # Tag-only seed: every (seed_k, rate) point of one sweep sees
        # the same reference genomes (k changes the database image the
        # device loads, not the genomes it is built from).
        return build_dataset(
            k=self.seed_k,
            num_species=self.num_species,
            genome_length=self.genome_length,
            num_reads=1,
            seed=hash_seed(self.seed_tag, "dataset") % 2**31,
        )

    def _planted_reads(self, genomes: Any) -> Any:
        import numpy as np

        from ..faults import hash_seed
        from ..genomics.synthetic import mutate

        rng = np.random.default_rng(
            hash_seed(self.seed_tag, "reads") % 2**31
        )
        planted = []
        for i in range(self.num_reads):
            genome_index = int(rng.integers(0, len(genomes)))
            genome = genomes[genome_index]
            start = int(
                rng.integers(0, len(genome.bases) - self.read_length + 1)
            )
            window = genome.subsequence(start, start + self.read_length)
            read = mutate(window, self.error_rate, rng)
            planted.append((f"mapread_{i}", read, genome_index, start))
        return planted

    def run(self, seed: int) -> Dict[str, Any]:
        from dataclasses import replace

        from ..faults import (
            FaultInjector,
            FaultModel,
            fault_injection,
            hash_seed,
        )
        from ..mapping import (
            MappingConfig,
            ReadMapper,
            SeedExtender,
            SeedIndex,
        )
        from ..sieve.device import SieveDevice

        dataset = self._dataset()
        genomes = dataset.genomes
        planted = self._planted_reads(genomes)
        model = FaultModel(
            bit_flip_rate=self.bit_flip_rate,
            seed=hash_seed(self.seed_tag, "rate", self.bit_flip_rate),
        )
        injector = FaultInjector(model)
        with fault_injection(injector):
            device = SieveDevice.from_database(dataset.database)
        extender = SeedExtender(
            SeedIndex.from_genomes(genomes, self.seed_k),
            genomes,
            MappingConfig(band=self.band, max_edits=self.band),
        )
        mapper = ReadMapper(device, extender)
        mapped = correct_location = edit_total = 0
        for read_id, read, genome_index, start in planted:
            result = mapper.map_read(replace(read, seq_id=read_id))
            if not result.mapped:
                continue
            mapped += 1
            edit_total += result.edit_distance
            if result.genome_index == genome_index and (
                result.position == start
            ):
                correct_location += 1
        stats = extender.stats
        return {
            "seed_k": self.seed_k,
            "bit_flip_rate": self.bit_flip_rate,
            "reads": self.num_reads,
            "mapped": mapped,
            "correct_location": correct_location,
            "recall": correct_location / self.num_reads,
            "mean_edit_distance": edit_total / mapped if mapped else 0.0,
            "seed_hits": stats.seed_hits,
            "candidates": stats.candidates,
            "dp_cells": stats.dp_cells,
            "bits_flipped": injector.stats.bits_flipped,
            "schedule_digest": injector.schedule_digest()[:16],
        }


@dataclass(frozen=True)
class ExperimentJob(Job):
    """One whole registry experiment, serialized to its golden payload.

    Used by the fleet CLI to parallelize *across* experiments; the
    experiment's own inner fan-out runs inline inside the worker (no
    nested pools).  Never cached: the golden updater relies on fresh
    double-runs to prove determinism.
    """

    cacheable: ClassVar[bool] = False

    name: str

    def run(self, seed: int) -> Dict[str, Any]:
        from ..experiments.registry import run_experiment
        from .golden import figure_payload

        return figure_payload(run_experiment(self.name))


@dataclass(frozen=True)
class BenchJob(Job):
    """One tracked benchmark of :mod:`repro.bench` (wall time + counters).

    Uncacheable by construction — a cached wall time is a lie.
    """

    cacheable: ClassVar[bool] = False

    name: str
    quick: bool = False

    def run(self, seed: int) -> Dict[str, Any]:
        from ..bench import BENCHMARKS, BenchError

        try:
            fn = BENCHMARKS[self.name]
        except KeyError:
            raise BenchError(
                f"unknown benchmark {self.name!r}; tracked: {list(BENCHMARKS)}"
            ) from None
        outcome = fn(self.quick)
        # Scenarios return (wall_s, counters) or (wall_s, counters,
        # extras) — extras are reported but never baseline-compared.
        if len(outcome) == 3:
            wall_s, counters, extras = outcome
        else:
            wall_s, counters = outcome
            extras = {}
        payload = {"name": self.name, "wall_s": wall_s, "counters": counters}
        if extras:
            payload["extras"] = extras
        return payload


@dataclass(frozen=True)
class TraceReplayJob(Job):
    """Deterministic service replay of a saved workload trace.

    The worker loads the :class:`repro.workloads.Trace` artifact,
    rebuilds the reference dataset from the parameters embedded in the
    trace, serves the trace in the deterministic pre-enqueue mode
    (optionally through the hot-k-mer cache), and reports the
    classification outcome plus the cache's work split.  Like
    :class:`SegmentLookupJob`, identity is by *content*: the cache
    digest and key fold in the trace's SHA-256 content hash, so results
    cache by what the trace contains, not where the file lives — and a
    regenerated-but-identical trace is a cache hit.  Every payload field
    is a pure function of the trace and the config (no wall times), so
    the job is safely cacheable.
    """

    trace_path: str = ""
    num_shards: int = 2
    max_batch_kmers: int = 128
    dedup: bool = False
    cache_capacity: int = 0
    cache_self_check: bool = False

    def key(self) -> str:
        return (
            f"{type(self).__name__}("
            f"trace=<content:{self.cache_token()}>,"
            f"num_shards={self.num_shards!r},"
            f"max_batch_kmers={self.max_batch_kmers!r},"
            f"dedup={self.dedup!r},"
            f"cache_capacity={self.cache_capacity!r},"
            f"cache_self_check={self.cache_self_check!r})"
        )

    def cache_token(self) -> str:
        from ..workloads import Trace

        return Trace.load(self.trace_path).content_hash()

    def run(self, seed: int) -> Dict[str, Any]:
        from ..service import ClassificationService, ServiceConfig
        from ..sieve import SieveDevice
        from ..workloads import Trace, replay_trace

        trace = Trace.load(self.trace_path)
        dataset = trace.rebuild_dataset()
        config = ServiceConfig(
            num_shards=self.num_shards,
            max_batch_kmers=self.max_batch_kmers,
            max_linger_s=0.0,
            queue_depth=len(trace),
            dedup=self.dedup,
            cache_capacity=self.cache_capacity,
            cache_self_check=self.cache_self_check,
        )
        backends = [
            SieveDevice.from_database(dataset.database)
            for _ in range(self.num_shards)
        ]
        service = ClassificationService(backends, config)
        responses = replay_trace(service, trace)
        stats = service.stats()
        counters = stats["metrics"]["counters"]
        correct = sum(
            1
            for req, resp in zip(trace.requests, responses)
            if resp.classification.taxon == req.taxon_id
        )
        payload = {
            "trace_hash": trace.content_hash(),
            "requests": len(responses),
            "batches": counters["batches_total"],
            "kmers": counters["kmers_total"],
            "hits": counters["hits_total"],
            "classified": sum(
                1 for r in responses if r.classification.taxon is not None
            ),
            "correct": correct,
            "sim_time_ns": int(stats["clocks"]["sim_time_ns"]),
        }
        if "cache" in stats:
            cache = stats["cache"]
            payload["cache"] = {
                "hit_kmers": cache["hit_kmers"],
                "dedup_kmers": cache["dedup_kmers"],
                "device_kmers": cache["device_kmers"],
                "evictions": cache["evictions"],
                "self_checked_kmers": cache["self_checked_kmers"],
            }
        return payload


@dataclass(frozen=True)
class ClusterReplayJob(Job):
    """Trace replay through a multi-process consistent-hash cluster.

    Same content-addressed identity as :class:`TraceReplayJob` (the key
    folds in the trace's SHA-256), but the service fronts a single
    :class:`repro.cluster.ClusterBackend` instead of in-process shard
    replicas: the reference is persisted to content-hashed mmap
    segments in a scratch directory, forked workers each open the
    mapping and slice out only their owned partitions, and the replay
    digest must match the sequential path bit-for-bit at any topology.
    The payload carries the classification digest plus residency facts
    (no worker holds a full build; owned records sum to the reference)
    so fleet sweeps over ``workers`` double as partition-coverage
    checks.
    """

    trace_path: str = ""
    workers: int = 2
    shards_per_worker: int = 1
    partitions: int = 32
    max_batch_kmers: int = 128

    def key(self) -> str:
        return (
            f"{type(self).__name__}("
            f"trace=<content:{self.cache_token()}>,"
            f"workers={self.workers!r},"
            f"shards_per_worker={self.shards_per_worker!r},"
            f"partitions={self.partitions!r},"
            f"max_batch_kmers={self.max_batch_kmers!r})"
        )

    def cache_token(self) -> str:
        from ..workloads import Trace

        return Trace.load(self.trace_path).content_hash()

    def run(self, seed: int) -> Dict[str, Any]:
        import tempfile

        from ..cluster import ClusterBackend
        from ..serialization import save_segments
        from ..service import ClassificationService, ClusterConfig, ServiceConfig
        from ..workloads import Trace, classification_digest, replay_trace

        trace = Trace.load(self.trace_path)
        dataset = trace.rebuild_dataset()
        config = ServiceConfig(
            num_shards=1,
            max_batch_kmers=self.max_batch_kmers,
            max_linger_s=0.0,
            queue_depth=len(trace),
            cluster=ClusterConfig(
                workers=self.workers,
                shards_per_worker=self.shards_per_worker,
                partitions=self.partitions,
            ),
        )
        with tempfile.TemporaryDirectory(prefix="sieve-cluster-") as segdir:
            save_segments(dataset.database, segdir)
            backend = ClusterBackend(segdir, cluster=config.cluster)
            try:
                service = ClassificationService([backend], config)
                responses = replay_trace(service, trace)
                stats = service.stats()
                counters = stats["metrics"]["counters"]
                rows = backend.cluster_stats()
                residents = [
                    row["resident"]
                    for row in rows["workers"]
                    if row["state"] == "live"
                ]
                correct = sum(
                    1
                    for req, resp in zip(trace.requests, responses)
                    if resp.classification.taxon == req.taxon_id
                )
                return {
                    "trace_hash": trace.content_hash(),
                    "classification_digest": classification_digest(responses),
                    "requests": len(responses),
                    "batches": counters["batches_total"],
                    "kmers": counters["kmers_total"],
                    "hits": counters["hits_total"],
                    "correct": correct,
                    "sim_time_ns": int(stats["clocks"]["sim_time_ns"]),
                    "live_workers": rows["live_workers"],
                    "partitions": rows["partitions"],
                    "full_build": any(r["full_build"] for r in residents),
                    "owned_records": sum(
                        r["owned_records"] for r in residents
                    ),
                    "total_records": max(
                        (r["total_records"] for r in residents), default=0
                    ),
                }
            finally:
                backend.close()


@dataclass(frozen=True)
class SanitizerProbeJob(Job):
    """Self-check that the DRAM protocol sanitizer reached a worker.

    With ``violate=True`` and a sanitizer installed, issues a READ
    before any ACTIVATE on a probe unit — the sanitizer must raise
    :class:`~repro.analysiskit.SanitizerError` (which then propagates
    across the process boundary with its command history).  Without a
    sanitizer the violation goes unobserved and the payload reports so.
    """

    cacheable: ClassVar[bool] = False

    violate: bool = True

    def run(self, seed: int) -> Dict[str, Any]:
        from ..analysiskit import active_sanitizer

        sanitizer = active_sanitizer()
        if sanitizer is None:
            return {"sanitizer_active": False, "violated": False}
        if self.violate:
            sanitizer.observe_command("fleet-probe", "RD", 3)
        return {"sanitizer_active": True, "violated": False}


@dataclass(frozen=True)
class ServiceLoadJob(Job):
    """One deterministic async-service load run (:mod:`repro.service`).

    Runs the classification service in its reproducible mode — every
    request pre-enqueued, zero linger, single-threaded event loop — so
    batch composition and every counter in the payload are a pure
    function of the fields and the derived seed.  Uncacheable because
    the payload also carries a measured wall time.
    """

    cacheable: ClassVar[bool] = False

    num_shards: int = 2
    max_batch_kmers: int = 128
    num_reads: int = 20
    read_length: int = 70

    def run(self, seed: int) -> Dict[str, Any]:
        import asyncio
        import time

        from ..genomics import build_dataset
        from ..service import ClassificationService, ServiceConfig
        from ..sieve import SieveDevice

        dataset = build_dataset(
            k=13,
            num_species=4,
            genome_length=400,
            num_reads=self.num_reads,
            read_length=self.read_length,
            seed=seed % 2**31,
        )
        config = ServiceConfig(
            num_shards=self.num_shards,
            max_batch_kmers=self.max_batch_kmers,
            max_linger_s=0.0,
            queue_depth=self.num_reads,
        )
        backends = [
            SieveDevice.from_database(dataset.database)
            for _ in range(self.num_shards)
        ]
        service = ClassificationService(backends, config)

        async def serve():
            futures = [service.submit(read) for read in dataset.reads]
            await service.start()
            responses = await asyncio.gather(*futures)
            await service.stop(drain=True)
            return responses

        start = time.perf_counter()
        responses = asyncio.run(serve())
        wall_s = time.perf_counter() - start
        counters = service.metrics.snapshot()["counters"]
        return {
            "requests": len(responses),
            "batches": counters["batches_total"],
            "kmers": counters["kmers_total"],
            "hits": counters["hits_total"],
            "classified": sum(
                1 for r in responses if r.classification.taxon is not None
            ),
            "wall_s": wall_s,
        }
