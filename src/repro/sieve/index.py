"""K-mer-to-subarray index (paper Section IV-D).

Reference k-mers are globally sorted and packed into subarrays in order;
the index keeps, per subarray, an 8-byte subarray ID plus the integer
values of the first and last k-mers stored there.  Routing a query is a
binary search over the (sorted, disjoint) ranges — the table scales
linearly with device capacity, not with k, and stays under 2 MB even for
a 500 GB device.

Queries whose value falls between two subarray ranges are guaranteed
misses and are answered at the host without touching the accelerator.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Bytes per index entry: 8-byte subarray ID + two packed k-mers (8 B each).
INDEX_ENTRY_BYTES = 24


class IndexError_(ValueError):
    """Raised on malformed index construction or routing."""


@dataclass(frozen=True)
class IndexEntry:
    """One subarray's range: [first_kmer, last_kmer], inclusive."""

    subarray_id: int
    first_kmer: int
    last_kmer: int

    def __post_init__(self) -> None:
        if self.first_kmer > self.last_kmer:
            raise IndexError_(
                f"subarray {self.subarray_id}: first k-mer {self.first_kmer} "
                f"> last {self.last_kmer}"
            )


class SubarrayIndex:
    """Range index from packed query k-mer to destination subarray."""

    def __init__(self, entries: Sequence[IndexEntry]) -> None:
        self._entries = list(entries)
        for prev, cur in zip(self._entries, self._entries[1:]):
            if cur.first_kmer <= prev.last_kmer:
                raise IndexError_(
                    f"subarray ranges overlap or are unsorted: "
                    f"{prev.subarray_id} ends at {prev.last_kmer}, "
                    f"{cur.subarray_id} starts at {cur.first_kmer}"
                )
        self._firsts = [e.first_kmer for e in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[IndexEntry]:
        return list(self._entries)

    def route(self, kmer: int) -> Optional[int]:
        """Destination subarray ID for a query, or None (guaranteed miss)."""
        pos = bisect.bisect_right(self._firsts, kmer) - 1
        if pos < 0:
            return None
        entry = self._entries[pos]
        if kmer <= entry.last_kmer:
            return entry.subarray_id
        return None

    def size_bytes(self) -> int:
        """Host memory footprint of the table."""
        return len(self._entries) * INDEX_ENTRY_BYTES

    @classmethod
    def build(
        cls,
        sorted_kmers: Sequence[int],
        refs_per_subarray: int,
        first_subarray_id: int = 0,
    ) -> Tuple["SubarrayIndex", List[List[int]]]:
        """Partition globally sorted k-mers into subarray-sized chunks.

        Returns the index plus the per-subarray k-mer lists (the load
        image for the device).  Raises when the input is not strictly
        ascending (duplicate reference k-mers would break the Column
        Finder's uniqueness guarantee).
        """
        return cls._build(sorted_kmers, refs_per_subarray, first_subarray_id)

    @staticmethod
    def naive_index_bytes(k: int, id_bytes: int = 8) -> int:
        """Footprint of the naive scheme Section IV-D rejects.

        A direct k-mer -> destination table needs one entry per possible
        k-mer: ``4^k`` ids — exponential in k, hopeless past k ~ 16.
        The range index instead scales linearly with device capacity
        (:meth:`size_bytes`).
        """
        if k <= 0:
            raise IndexError_(f"k must be positive, got {k}")
        return (4**k) * id_bytes

    @classmethod
    def _build(
        cls,
        sorted_kmers: Sequence[int],
        refs_per_subarray: int,
        first_subarray_id: int = 0,
    ) -> Tuple["SubarrayIndex", List[List[int]]]:
        """Partition globally sorted k-mers into subarray-sized chunks.

        Returns the index plus the per-subarray k-mer lists (the load
        image for the device).  Raises when the input is not strictly
        ascending (duplicate reference k-mers would break the Column
        Finder's uniqueness guarantee).
        """
        if refs_per_subarray <= 0:
            raise IndexError_(
                f"refs_per_subarray must be positive, got {refs_per_subarray}"
            )
        for a, b in zip(sorted_kmers, sorted_kmers[1:]):
            if b <= a:
                raise IndexError_(
                    "reference k-mers must be strictly ascending and unique"
                )
        chunks: List[List[int]] = []
        entries: List[IndexEntry] = []
        for start in range(0, len(sorted_kmers), refs_per_subarray):
            chunk = list(sorted_kmers[start : start + refs_per_subarray])
            sid = first_subarray_id + len(chunks)
            entries.append(IndexEntry(sid, chunk[0], chunk[-1]))
            chunks.append(chunk)
        return cls(entries), chunks
