"""Bit-accurate functional simulator of a Sieve Type-2 subarray group
(paper Section IV-A, Figure 11).

Type-2 shares Type-3's data layout, matchers, ETM, and Column Finder,
but the logic lives in one *compute buffer* per subarray group instead
of in every local row buffer.  Matching a query whose references live in
subarray ``s`` therefore relays every activated row down the group —
LISA-style charge-sharing hops across the isolation transistors between
adjacent subarrays — until it reaches the compute buffer at the bottom.

The simulator executes the relay literally (the row image moves through
each intermediate subarray's sense amplifiers, two active at a time) and
counts hops, which is the quantity the analytic
:class:`~repro.sieve.perfmodel.Type2Model` charges per activation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .column_finder import ColumnFinder
from .etm import EtmPipeline
from .functional import MatchOutcome, SieveSubarraySim, _bits_to_int
from .layout import OFFSET_BITS, PAYLOAD_BITS, SubarrayLayout
from .matcher import MatcherArray


class Type2Error(RuntimeError):
    """Raised on protocol errors in the Type-2 simulator."""


@dataclass(frozen=True)
class Type2Outcome:
    """A Type-2 match outcome: Type-3 semantics plus relay accounting."""

    base: MatchOutcome
    source_subarray: int
    hops_per_row: int
    total_hops: int


class Type2GroupSim:
    """A subarray group: member subarrays + one compute buffer.

    Member subarrays are plain (un-enhanced) Sieve-layout subarrays;
    the compute buffer at index ``size`` (below the last member) holds
    the matcher array, ETM, and Column Finder.
    """

    def __init__(
        self,
        layout: SubarrayLayout,
        member_records: Sequence[Sequence[Tuple[int, int]]],
        etm_enabled: bool = True,
    ) -> None:
        if not member_records:
            raise Type2Error("group needs at least one member subarray")
        self.layout = layout
        self.etm_enabled = etm_enabled
        # Reuse the Type-3 functional subarray for storage + layout; its
        # local matchers stay unused (Type-2 members have plain buffers).
        self.members: List[SieveSubarraySim] = [
            SieveSubarraySim(layout, records, etm_enabled=etm_enabled)
            for records in member_records
        ]
        # Compute buffer: matcher + ETM + CF, no storage of its own.
        self.cb_matchers = MatcherArray(layout.row_bits)
        self.cb_etm = EtmPipeline(layout.row_bits)
        self.cb_finder = ColumnFinder(self.cb_etm)
        # Relay chain state: intermediate sense-amp stages, one per
        # member between the source and the buffer.
        self.total_hops = 0

    @property
    def size(self) -> int:
        return len(self.members)

    def hops_from(self, member_index: int) -> int:
        """Subarray crossings from member ``member_index`` to the CB.

        The compute buffer sits below the last member; the bottom member
        is one hop away (its bitlines charge-share into the CB), the top
        member ``size`` hops.
        """
        if not 0 <= member_index < self.size:
            raise Type2Error(f"member {member_index} out of range [0, {self.size})")
        return self.size - member_index

    def _relay_row(self, member_index: int, row_bits: np.ndarray) -> np.ndarray:
        """Relay an activated row down to the compute buffer.

        Each hop re-amplifies the image in the next subarray's sense
        amplifiers (Figure 11: only two sets active at a time); the
        functional content is unchanged — the SPICE validation's claim —
        so the relay is a sequence of faithful copies.
        """
        image = row_bits.copy()
        hops = self.hops_from(member_index)
        for _ in range(hops):
            image = image.copy()  # next stage's sense amps latch it
        self.total_hops += hops
        return image

    def route_member(self, kmer: int) -> int:
        """Which member subarray's sorted range should hold ``kmer``."""
        for idx, member in enumerate(self.members):
            first = member.records[0][0]
            last = member.records[-1][0]
            if first <= kmer <= last:
                return idx
        # Guaranteed miss: route to the nearest range (the device-level
        # index would normally have filtered this).
        return min(
            range(self.size),
            key=lambda i: min(
                abs(kmer - self.members[i].records[0][0]),
                abs(kmer - self.members[i].records[-1][0]),
            ),
        )

    def match_query(self, query: int) -> Type2Outcome:
        """Match one query: activate rows in the source subarray, relay
        each to the compute buffer, compare there."""
        member_index = self.route_member(query)
        member = self.members[member_index]
        layout = self.layout
        layer = member.route_layer(query)
        member.load_query_batch([query], layer)
        self.cb_matchers.set_enable(member._layer_enable(layer))
        self.cb_matchers.reset()
        self.cb_etm.reset()
        hops_per_row = self.hops_from(member_index)
        base_row = layout.layer_base_row(layer)
        rows_activated = 0
        terminated_early = False
        total_rows = layout.kmer_rows
        bit = 0
        while bit < total_rows:
            row = member.array.activate(base_row + bit)
            image = self._relay_row(member_index, np.asarray(row))
            member.array.precharge()
            qvec = self._query_vector(image, 0)
            self.cb_matchers.compare_per_column(image, qvec)
            rows_activated += 1
            self.cb_etm.step(self.cb_matchers.latches)
            if self.etm_enabled and self.cb_etm.terminated and bit < total_rows - 1:
                member.array.activate(base_row + bit + 1)
                member.array.precharge()
                self.total_hops += hops_per_row
                rows_activated += 1
                terminated_early = True
                break
            bit += 1
        if self.cb_matchers.any_match():
            outcome = self._retrieve(member, layer, query, rows_activated, hops_per_row)
        else:
            outcome = MatchOutcome(
                query=query,
                hit=False,
                payload=None,
                column=None,
                layer=layer,
                rows_activated=rows_activated,
                etm_flush_cycles=0,
                cf=None,
                etm_terminated_early=terminated_early,
            )
        return Type2Outcome(
            base=outcome,
            source_subarray=member_index,
            hops_per_row=hops_per_row,
            total_hops=outcome.rows_activated * hops_per_row,
        )

    def _query_vector(self, row_bits: np.ndarray, batch_slot: int) -> np.ndarray:
        layout = self.layout
        qvec = np.zeros(layout.row_bits, dtype=np.uint8)
        for g in range(layout.num_groups):
            qcol = layout.query_columns(g)[batch_slot]
            base = layout.group_base(g)
            qvec[base : base + layout.group_width] = row_bits[qcol]
        return qvec

    def _retrieve(
        self,
        member: SieveSubarraySim,
        layer: int,
        query: int,
        rows_activated: int,
        hops_per_row: int,
    ) -> MatchOutcome:
        layout = self.layout
        flush = self.cb_etm.flush_cycles_after_last_row()
        cf = self.cb_finder.find(np.asarray(self.cb_matchers.latches))
        slot = layout.column_to_ref_slot(cf.column)
        orow, ocol = layout.offset_location(layer, slot)
        bits = self._relay_row(
            member_index=self.members.index(member),
            row_bits=np.asarray(member.array.activate(orow)),
        )
        member.array.precharge()
        offset = _bits_to_int(bits[ocol : ocol + OFFSET_BITS])
        prow, pcol = layout.payload_location(layer, offset)
        bits = self._relay_row(
            member_index=self.members.index(member),
            row_bits=np.asarray(member.array.activate(prow)),
        )
        member.array.precharge()
        payload = _bits_to_int(bits[pcol : pcol + PAYLOAD_BITS])
        return MatchOutcome(
            query=query,
            hit=True,
            payload=payload,
            column=cf.column,
            layer=layer,
            rows_activated=rows_activated + 2,
            etm_flush_cycles=flush,
            cf=cf,
            etm_terminated_early=False,
        )
