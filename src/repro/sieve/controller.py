"""Event-driven simulation of a Sieve bank's request pipeline.

The analytic models in :mod:`repro.sieve.perfmodel` use a single
steady-state rule — per-bank time per query = ``max(matching / streams,
bank I/O)`` — to aggregate the two serialized resources of a bank: the
matching engine(s) and the I/O port that carries query-batch writes,
request delivery, and payload returns.  This module cross-checks that
rule with a discrete-event simulation of the actual pipeline
(Section IV-E): requests arrive in PCIe-delivered batches, each batch's
query bits are written over the bank I/O, its queries then match on any
free subarray stream (out-of-order across batches), and hits pay a
payload-fetch visit back on the I/O port.

The tests assert that the event-driven throughput converges to the
analytic steady state, which is what justifies using the closed form at
paper scale.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..dram.timing import SIEVE_TIMING, DramTiming
from .layout import SubarrayLayout
from .perfmodel import EspModel, ModelError, WorkloadStats


@dataclass(frozen=True)
class SimRequest:
    """One k-mer request as the bank scheduler sees it."""

    request_id: int
    subarray: int
    pattern_rows: int  # row activations its matching needs
    hit: bool


@dataclass
class BankSimResult:
    """Outcome of one event-driven bank run."""

    total_ns: float
    requests: int
    io_busy_ns: float
    stream_busy_ns: float
    streams: int
    latencies_ns: List[float] = field(default_factory=list)

    @property
    def ns_per_query(self) -> float:
        return self.total_ns / self.requests if self.requests else 0.0

    @property
    def io_utilization(self) -> float:
        return self.io_busy_ns / self.total_ns if self.total_ns else 0.0

    @property
    def stream_utilization(self) -> float:
        if not self.total_ns:
            return 0.0
        return self.stream_busy_ns / (self.total_ns * self.streams)

    @property
    def mean_latency_ns(self) -> float:
        return float(np.mean(self.latencies_ns)) if self.latencies_ns else 0.0

    @property
    def completed_out_of_order(self) -> int:
        """Requests that finished before an earlier-issued request."""
        count = 0
        running_max = -1.0
        for latency_plus_issue in self.latencies_ns:
            if latency_plus_issue < running_max:
                count += 1
            running_max = max(running_max, latency_plus_issue)
        return count


class BankEventSim:
    """Discrete-event model of one bank: I/O port + matching streams."""

    def __init__(
        self,
        layout: SubarrayLayout,
        streams: int = 8,
        timing: DramTiming = SIEVE_TIMING,
        payload_rows_per_hit: int = 2,
    ) -> None:
        if streams <= 0:
            raise ModelError("streams must be positive")
        self.layout = layout
        self.streams = streams
        self.timing = timing
        self.payload_rows_per_hit = payload_rows_per_hit

    @property
    def batch_write_ns(self) -> float:
        """I/O time to install one query batch (Section IV-A formula)."""
        return self.layout.batch_write_commands * self.timing.tCCD

    def matching_ns(self, request: SimRequest) -> float:
        rows = request.pattern_rows
        if request.hit:
            rows += self.payload_rows_per_hit
        return rows * self.timing.row_cycle

    def run(self, requests: Sequence[SimRequest]) -> BankSimResult:
        """Run the pipeline to completion (all requests available at t=0).

        Batches are formed per subarray in arrival order (up to the
        layout's 64 queries per group).  The I/O port writes batches
        back-to-back; each query of a written batch runs on the earliest
        free stream; hits then occupy the stream for the payload fetch
        (payload transfer back over I/O is folded into the write stream
        as one burst, negligible at this granularity).
        """
        if not requests:
            raise ModelError("no requests to simulate")
        batch_size = self.layout.queries_per_group
        per_subarray: Dict[int, List[SimRequest]] = {}
        for req in requests:
            per_subarray.setdefault(req.subarray, []).append(req)
        batches: List[List[SimRequest]] = []
        for queue in per_subarray.values():
            for start in range(0, len(queue), batch_size):
                batches.append(queue[start : start + batch_size])

        # The I/O port serializes batch writes.
        io_time = 0.0
        batch_ready: List[float] = []
        for _ in batches:
            io_time += self.batch_write_ns
            batch_ready.append(io_time)
        io_busy = io_time

        # Streams: min-heap of next-free times.
        free_at = [0.0] * self.streams
        heapq.heapify(free_at)
        stream_busy = 0.0
        finish_times: Dict[int, float] = {}
        for ready, batch in zip(batch_ready, batches):
            for req in batch:
                start = max(heapq.heappop(free_at), ready)
                service = self.matching_ns(req)
                end = start + service
                stream_busy += service
                heapq.heappush(free_at, end)
                finish_times[req.request_id] = end
        total = max(finish_times.values())
        ordered = [finish_times[r.request_id] for r in requests]
        return BankSimResult(
            total_ns=total,
            requests=len(requests),
            io_busy_ns=io_busy,
            stream_busy_ns=stream_busy,
            streams=self.streams,
            latencies_ns=ordered,
        )


def sample_requests(
    workload: WorkloadStats,
    num_requests: int,
    subarrays: int,
    rng: Optional[np.random.Generator] = None,
) -> List[SimRequest]:
    """Draw a request trace from a workload's statistics.

    Subarray destinations are uniform (the sorted index spreads random
    queries evenly); per-miss pattern rows follow the workload's ESP
    distribution; hits scan every row.
    """
    if num_requests <= 0:
        raise ModelError("num_requests must be positive")
    if subarrays <= 0:
        raise ModelError("subarrays must be positive")
    rng = rng or np.random.default_rng(0)
    esp: EspModel = workload.esp
    probs = np.array(esp.probabilities)
    rows_support = np.arange(1, esp.total_rows + 1)
    requests = []
    for i in range(num_requests):
        hit = bool(rng.random() < workload.hit_rate)
        rows = esp.total_rows if hit else int(rng.choice(rows_support, p=probs))
        requests.append(
            SimRequest(
                request_id=i,
                subarray=int(rng.integers(0, subarrays)),
                pattern_rows=rows,
                hit=hit,
            )
        )
    return requests


def validate_steady_state(
    workload: WorkloadStats,
    layout: SubarrayLayout,
    streams: int = 8,
    num_requests: int = 2000,
    timing: DramTiming = SIEVE_TIMING,
    seed: int = 0,
) -> Dict[str, float]:
    """Compare event-driven throughput with the analytic closed form.

    Returns both per-query times and their ratio; the test suite asserts
    the ratio stays near 1.
    """
    sim = BankEventSim(layout, streams=streams, timing=timing)
    rng = np.random.default_rng(seed)
    requests = sample_requests(
        workload, num_requests, subarrays=max(streams * 4, 16), rng=rng
    )
    result = sim.run(requests)
    # Analytic steady state on the same sampled trace.  The closed form
    # assumes full 64-query batches; at small trace sizes the simulator
    # forms partial trailing batches, so charge the I/O for the batches
    # actually formed.
    mean_match = float(np.mean([sim.matching_ns(r) for r in requests]))
    batch_size = layout.queries_per_group
    per_subarray: Dict[int, int] = {}
    for req in requests:
        per_subarray[req.subarray] = per_subarray.get(req.subarray, 0) + 1
    num_batches = sum(-(-count // batch_size) for count in per_subarray.values())
    io_per_query = num_batches * sim.batch_write_ns / len(requests)
    analytic = max(mean_match / streams, io_per_query)
    return {
        "event_ns_per_query": result.ns_per_query,
        "analytic_ns_per_query": analytic,
        "ratio": result.ns_per_query / analytic,
        "io_utilization": result.io_utilization,
        "stream_utilization": result.stream_utilization,
    }
