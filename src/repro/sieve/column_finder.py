"""Column Finder (paper Section IV-A, Figures 8 and 10).

When a query matches, exactly one latch in the row buffer holds 1; the
Column Finder (CF) recovers that column number so the subarray
controller can index Region 2 (offsets) and Region 3 (payloads).

The paper's two-level pipelined shifter:

1. shift the Backup Segment Registers (BSRs) until the live segment is
   found (one shift per DRAM I/O cycle),
2. copy that segment's latches into the Reserved Segment (RS),
3. shift the RS until the 1 emerges.

Step 3 overlaps with the matching of the *next* k-mer, so CF is only on
the critical path while the ETM pipeline flushes and the segment is
copied; the paper bounds CF at 1032 DRAM cycles worst case against
4800 DRAM cycles per hit, so consecutive hits never contend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .etm import EtmPipeline


class ColumnFinderError(RuntimeError):
    """Raised when CF runs without a unique live latch."""


@dataclass(frozen=True)
class ColumnFindResult:
    """Outcome of one Column Finder run."""

    column: int
    segment: int
    bsr_shift_cycles: int  # step 1, DRAM I/O cycles
    copy_cycles: int  # step 2
    rs_shift_cycles: int  # step 3 (overlapped with next k-mer)

    @property
    def total_cycles(self) -> int:
        """All CF cycles (critical-path + overlapped)."""
        return self.bsr_shift_cycles + self.copy_cycles + self.rs_shift_cycles

    @property
    def critical_path_cycles(self) -> int:
        """Cycles before ETM segments are freed for the next k-mer."""
        return self.bsr_shift_cycles + self.copy_cycles


class ColumnFinder:
    """Two-level shifter over the matcher latches."""

    def __init__(self, etm: EtmPipeline) -> None:
        self.etm = etm

    def find(self, latches: np.ndarray, strict: bool = True) -> ColumnFindResult:
        """Locate the single live latch.

        ``latches`` is the matcher latch row after the final activation.
        Raises :class:`ColumnFinderError` when no latch is live, or —
        with ``strict`` (the default) — when more than one is, since the
        database guarantees unique references per subarray.  The shifter
        hardware itself has no such check: it stops at the first 1 it
        reaches, which is what ``strict=False`` models (fault injection
        can legitimately produce duplicate live latches).
        """
        latches = np.asarray(latches, dtype=np.uint8)
        if latches.shape != (self.etm.width,):
            raise ColumnFinderError(
                f"latch row must have shape ({self.etm.width},), "
                f"got {latches.shape}"
            )
        live = np.flatnonzero(latches)
        if live.size == 0:
            raise ColumnFinderError("column finder invoked with no match")
        if strict and live.size > 1:
            raise ColumnFinderError(
                f"multiple live latches {live.tolist()}; reference k-mers "
                "must be unique within a subarray"
            )
        column = int(live[0])
        segment = column // self.etm.segment_size
        # Step 1: shift BSRs until the live one reaches the shifter head.
        bsr_shifts = segment + 1
        # Step 2: copy the segment into the Reserved Segment.
        copy_cycles = 1
        # Step 3: shift the RS until the 1 emerges (overlapped).
        in_segment = column - segment * self.etm.segment_size
        rs_shifts = in_segment + 1
        # Paper's composition: column = segment * (#cols/segment) + index.
        recomputed = segment * self.etm.segment_size + in_segment
        assert recomputed == column
        return ColumnFindResult(
            column=column,
            segment=segment,
            bsr_shift_cycles=bsr_shifts,
            copy_cycles=copy_cycles,
            rs_shift_cycles=rs_shifts,
        )

    def worst_case_cycles(self) -> int:
        """Paper's CF bound: shift every BSR, copy, shift a full segment."""
        return self.etm.num_segments + 1 + self.etm.segment_size
