"""Trace-driven analytic performance/energy model of Sieve Types 1-3.

The paper evaluates Sieve with "a trace-driven, in-house simulator with
a custom DRAMSim2-based front-end" (Section V).  This module is that
simulator's equivalent: it consumes a :class:`WorkloadStats` summary of
a query trace (k-mer count, hit rate, and the ETM termination
distribution) and produces device-level latency and energy for each
Sieve type, using the DRAM timing/energy substrates and the paper's
component costs.

Model structure (derived in DESIGN.md):

* Each *bank* processes queries with two serialized resources: the
  matching engine(s) and the bank I/O (query-batch writes, request
  delivery, payload return).  Steady-state time per query at one bank is
  ``max(matching / streams, io)`` — matching and I/O for different
  queries overlap, and SALP multiplies matching streams.  This single
  rule reproduces the paper's Figure 16 plateau (beyond ~8 concurrent
  subarrays the bank I/O write traffic binds) without a separate fit.
* **Type-3**: matching runs in local row buffers, ``streams_per_bank``
  concurrent subarrays (SALP).
* **Type-2**: one row relay at a time per bank (the paper's SPICE
  constraint: only two sets of sense amplifiers enabled at once), so one
  matching stream whose per-row cost adds the hop delay to the group's
  compute buffer; more compute buffers shorten the average hop distance.
* **Type-1**: one stream per bank at the chip I/O; every activated row
  is burst-read batch-by-batch, pruned by the Skip-Bits/Start-Batch
  registers as candidates die off.

Queries route to exactly one subarray via the sorted index; they spread
uniformly (hash-like) over the device, so banks are balanced up to a
configurable imbalance factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..dram.energy import DDR4_ENERGY, DramEnergy
from ..dram.geometry import SIEVE_32GB, DramGeometry
from ..dram.timing import SIEVE_TIMING, DramTiming
from ..hardware.circuits import hop_delay_ns
from .etm import DEFAULT_SEGMENT_SIZE
from .layout import SubarrayLayout


class ModelError(ValueError):
    """Raised on inconsistent model configuration."""


# ---------------------------------------------------------------------------
# ETM termination distribution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EspModel:
    """Distribution of row activations per *dispatched miss* under ETM.

    ``probabilities[i]`` is the probability that matching a missing
    query terminates after exactly ``i + 1`` row activations (including
    the one activation the interrupt races, see
    :mod:`repro.sieve.functional`).  The support is ``1 .. 2k`` rows.
    """

    probabilities: tuple

    def __post_init__(self) -> None:
        if not self.probabilities:
            raise ModelError("ESP distribution must be non-empty")
        total = sum(self.probabilities)
        if any(p < 0 for p in self.probabilities) or abs(total - 1.0) > 1e-6:
            raise ModelError(f"probabilities must be >= 0 and sum to 1, got {total}")

    @property
    def total_rows(self) -> int:
        return len(self.probabilities)

    def mean_rows(self) -> float:
        """Expected activations per miss."""
        return sum((i + 1) * p for i, p in enumerate(self.probabilities))

    def full_scan_fraction(self) -> float:
        """Fraction of misses that activate every pattern row."""
        return self.probabilities[-1]

    @classmethod
    def paper_fig6(
        cls,
        k: int,
        interrupt_lag_rows: int = 1,
        head_prob: float = 0.969,
        head_bits: int = 10,
        full_scan_prob: float = 0.0017,
    ) -> "EspModel":
        """Calibrated to the paper's Figure 6 characterization.

        Figure 6 reports, per query k-mer, the number of bits the ETM
        must compare before every candidate has mismatched: 96.9 % of
        queries resolve within the first five bases (10 bits) and only
        0.17 % must activate every pattern row.

        The ETM terminates at the *maximum* shared prefix over the
        candidates in the subarray, so the distribution has the
        max-of-geometrics shape ``F(b) = (1 - 2^-b)^n``.  Because the
        sorted layout routes each query next to its nearest reference
        neighbours, ``n`` is an *effective* independent-candidate count,
        which we solve from the published head constraint
        ``F(head_bits) = head_prob`` (n ~ 32 for the defaults) instead of
        assuming the full 7-k candidates are independent.
        ``interrupt_lag_rows`` models the ACT the termination signal
        races (see :mod:`repro.sieve.functional`).
        """
        total_rows = 2 * k
        if total_rows <= head_bits + 1:
            raise ModelError("paper_fig6 profile needs 2k > head_bits + 1")
        if not 0.0 < head_prob < 1.0 or not 0.0 <= full_scan_prob < 1.0:
            raise ModelError("head/full-scan probabilities must be in (0, 1)")
        n_eff = math.log(head_prob) / math.log(1.0 - 2.0**-head_bits)
        probs = [0.0] * total_rows
        prev_cdf = 0.0
        scale = 1.0 - full_scan_prob
        for bits in range(1, total_rows):
            cdf = (1.0 - 2.0**-bits) ** n_eff
            probs[bits - 1] = scale * (cdf - prev_cdf)
            prev_cdf = cdf
        probs[total_rows - 1] = scale * (1.0 - prev_cdf) + full_scan_prob
        # Shift by the interrupt lag, clamping at the final row.
        shifted = [0.0] * total_rows
        for i, p in enumerate(probs):
            shifted[min(i + interrupt_lag_rows, total_rows - 1)] += p
        return cls(tuple(shifted))

    @classmethod
    def from_rows(cls, rows: Sequence[int], total_rows: int) -> "EspModel":
        """Empirical distribution from functional-simulator measurements."""
        counted = [r for r in rows if r > 0]
        if not counted:
            raise ModelError("no dispatched queries in the trace")
        probs = [0.0] * total_rows
        for r in counted:
            probs[min(r, total_rows) - 1] += 1.0
        n = len(counted)
        return cls(tuple(p / n for p in probs))

    @classmethod
    def uniform_random(cls, k: int, candidates: int, interrupt_lag_rows: int = 1) -> "EspModel":
        """Analytic max-shared-prefix model for ``candidates`` random refs.

        P(max first-diff bit >= b) = 1 - (1 - 2^-b)^candidates; used by
        sensitivity studies comparing against the Fig-6 calibration.
        """
        total_rows = 2 * k
        probs = [0.0] * total_rows
        prev_cdf = 0.0
        for rows in range(1, total_rows + 1):
            bits = rows
            cdf = (1.0 - 2.0**-bits) ** candidates
            probs[min(rows - 1 + interrupt_lag_rows, total_rows - 1)] += cdf - prev_cdf
            prev_cdf = cdf
        probs[total_rows - 1] += 1.0 - prev_cdf
        return cls(tuple(probs))


# ---------------------------------------------------------------------------
# Workload summary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadStats:
    """Everything the analytic model needs to know about a query trace."""

    name: str
    k: int
    num_kmers: int
    hit_rate: float
    esp: EspModel
    #: Queries answered at the host by the index (range gaps).
    index_filtered_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.num_kmers <= 0:
            raise ModelError("num_kmers must be positive")
        if not 0.0 <= self.hit_rate <= 1.0:
            raise ModelError(f"hit_rate must be in [0, 1], got {self.hit_rate}")
        if not 0.0 <= self.index_filtered_fraction < 1.0:
            raise ModelError("index_filtered_fraction must be in [0, 1)")
        if self.esp.total_rows != 2 * self.k:
            raise ModelError(
                f"ESP support {self.esp.total_rows} != 2k = {2 * self.k}"
            )

    @property
    def dispatched_kmers(self) -> float:
        return self.num_kmers * (1.0 - self.index_filtered_fraction)

    def with_hit_rate(self, hit_rate: float) -> "WorkloadStats":
        """Variant for sensitivity studies (e.g. the adversarial all-hit)."""
        return replace(self, hit_rate=hit_rate)

    @classmethod
    def from_functional(cls, name: str, k: int, stats) -> "WorkloadStats":
        """Summarize a functional run's :class:`DeviceStats`."""
        dispatched = [r for r in stats.rows_per_query if r > 0]
        filtered = stats.queries - len(dispatched)
        # Hits include 2 payload-fetch activations; strip them so the ESP
        # distribution covers pattern rows only.
        total_rows = 2 * k
        rows = [min(r, total_rows) for r in dispatched]
        return cls(
            name=name,
            k=k,
            num_kmers=stats.queries,
            hit_rate=stats.hit_rate,
            esp=EspModel.from_rows(rows, total_rows),
            index_filtered_fraction=filtered / stats.queries if stats.queries else 0.0,
        )


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PerfResult:
    """Device-level outcome for one (design, workload) pair."""

    design: str
    workload: str
    time_s: float
    energy_j: float
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_qps(self) -> float:
        return self.breakdown.get("num_kmers", 0.0) / self.time_s

    def speedup_over(self, other: "PerfResult") -> float:
        return other.time_s / self.time_s

    def energy_saving_over(self, other: "PerfResult") -> float:
        return other.energy_j / self.energy_j


# ---------------------------------------------------------------------------
# Shared Sieve model machinery
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SieveModelConfig:
    """Device configuration shared by the three Sieve types."""

    geometry: DramGeometry = SIEVE_32GB
    timing: DramTiming = SIEVE_TIMING
    energy: DramEnergy = DDR4_ENERGY
    #: Host pre/post-processing power attributable to Sieve operation
    #: (k-mer generation, driver, DMA, payload accumulation; Section V
    #: pipelines this with matching, so it contributes energy but not
    #: latency).  The host works proportionally to the request rate it
    #: must sustain: a Type-3 device at ~1.6 G requests/s keeps the whole
    #: socket busy, while Type-1's ~30 M requests/s barely loads it.
    host_base_power_w: float = 10.0
    host_power_per_gqps_w: float = 55.0
    #: PCIe/DIMM communication overhead as a latency fraction
    #: (Section VI-C measures 4.6-6.7 % for PCIe 4.0 x16).
    interconnect_overhead: float = 0.055
    #: Load-imbalance factor across banks (1.0 = perfectly uniform).
    load_imbalance: float = 1.0
    #: Bursts to deliver one 12-byte request to a bank buffer.
    request_bursts: int = 2
    #: Bursts to return one hit payload.
    response_bursts: int = 1

    def layout(self, k: int) -> SubarrayLayout:
        return SubarrayLayout(
            k=k,
            row_bits=self.geometry.row_bits,
            rows_per_subarray=self.geometry.rows_per_subarray,
        )


@dataclass(frozen=True)
class QueryCost:
    """Per-query steady-state costs at one bank."""

    matching_ns: float
    io_ns: float
    energy_nj: float

    def bank_time_ns(self, streams: int) -> float:
        """Steady-state time per query at a bank with N matching streams."""
        if streams <= 0:
            raise ModelError("streams must be positive")
        return max(self.matching_ns / streams, self.io_ns)


class SieveModel:
    """Base class: device aggregation shared by all three types."""

    design = "sieve"
    streams_per_bank = 1

    def __init__(self, config: Optional[SieveModelConfig] = None) -> None:
        self.config = config or SieveModelConfig()

    # subclasses implement this
    def query_cost(self, workload: WorkloadStats) -> QueryCost:
        raise NotImplementedError

    def _io_common_ns(self, workload: WorkloadStats) -> float:
        """Request delivery + payload return, per query."""
        cfg = self.config
        t = cfg.request_bursts * cfg.timing.tCCD
        t += workload.hit_rate * cfg.response_bursts * cfg.timing.tCCD
        return t

    def _io_common_nj(self, workload: WorkloadStats) -> float:
        cfg = self.config
        e = cfg.request_bursts * cfg.energy.read_burst_energy_nj(cfg.timing)
        e += (
            workload.hit_rate
            * cfg.response_bursts
            * cfg.energy.read_burst_energy_nj(cfg.timing)
        )
        return e

    def run(self, workload: WorkloadStats) -> PerfResult:
        """Device-level latency and energy for a workload."""
        cfg = self.config
        cost = self.query_cost(workload)
        per_query_bank_ns = cost.bank_time_ns(self.streams_per_bank)
        queries_per_bank = workload.dispatched_kmers / cfg.geometry.total_banks
        busy_ns = per_query_bank_ns * queries_per_bank * cfg.load_imbalance
        total_ns = busy_ns * (1.0 + cfg.interconnect_overhead)
        time_s = total_ns * 1e-9
        # Energy: per-query device energy + device background + host share.
        dynamic_j = cost.energy_nj * workload.dispatched_kmers * 1e-9
        background_w = (
            cfg.energy.background_power_mw()
            * 1e-3
            * (cfg.geometry.capacity_bytes / 2**29)  # per 4Gb (x16) chip
        )
        background_j = background_w * time_s
        qps_g = workload.num_kmers / time_s / 1e9
        host_power_w = cfg.host_base_power_w + cfg.host_power_per_gqps_w * qps_g
        host_j = host_power_w * time_s
        energy_j = dynamic_j + background_j + host_j
        return PerfResult(
            design=self.design,
            workload=workload.name,
            time_s=time_s,
            energy_j=energy_j,
            breakdown={
                "num_kmers": float(workload.num_kmers),
                "per_query_bank_ns": per_query_bank_ns,
                "matching_ns": cost.matching_ns,
                "io_ns": cost.io_ns,
                "per_query_energy_nj": cost.energy_nj,
                "dynamic_j": dynamic_j,
                "background_j": background_j,
                "host_j": host_j,
                "streams_per_bank": float(self.streams_per_bank),
            },
        )

    # -- shared per-row statistics -----------------------------------------

    def mean_pattern_rows(self, workload: WorkloadStats, etm: bool) -> float:
        """Expected Region-1 activations per dispatched query."""
        total = 2.0 * workload.k
        if not etm:
            return total
        miss_rows = workload.esp.mean_rows()
        return workload.hit_rate * total + (1.0 - workload.hit_rate) * miss_rows


# ---------------------------------------------------------------------------
# Type-3
# ---------------------------------------------------------------------------


class Type3Model(SieveModel):
    """Type-3: matchers in every local row buffer, SALP across subarrays."""

    def __init__(
        self,
        config: Optional[SieveModelConfig] = None,
        concurrent_subarrays: int = 8,
        etm_enabled: bool = True,
    ) -> None:
        super().__init__(config)
        if concurrent_subarrays <= 0:
            raise ModelError("concurrent_subarrays must be positive")
        if concurrent_subarrays > self.config.geometry.subarrays_per_bank:
            raise ModelError(
                "concurrent_subarrays exceeds subarrays per bank "
                f"({self.config.geometry.subarrays_per_bank})"
            )
        self.concurrent_subarrays = concurrent_subarrays
        self.etm_enabled = etm_enabled
        self.streams_per_bank = concurrent_subarrays

    @property
    def design(self) -> str:  # type: ignore[override]
        suffix = "" if self.etm_enabled else ".noETM"
        return f"T3.{self.concurrent_subarrays}SA{suffix}"

    @classmethod
    def power_limited(
        cls,
        requested_subarrays: int,
        budget_w: float,
        config: Optional[SieveModelConfig] = None,
        etm_enabled: bool = True,
        theta_ja: float = 0.9,
    ) -> "Type3Model":
        """Type-3 with SALP throttled to the power/thermal envelope.

        The paper's Figure 16 sweep assumes unconstrained delivery;
        deployments must respect their slot (Section VI-C).  This
        constructor clamps the requested SALP degree to what
        ``budget_w`` (and the 85 C DRAM ceiling) can feed.
        """
        from ..hardware.thermal import throttled_streams

        config = config or SieveModelConfig()
        allowed = throttled_streams(
            requested_subarrays,
            budget_w,
            geometry=config.geometry,
            timing=config.timing,
            energy=config.energy,
            theta_ja=theta_ja,
        )
        return cls(config, concurrent_subarrays=allowed, etm_enabled=etm_enabled)

    def query_cost(self, workload: WorkloadStats) -> QueryCost:
        cfg = self.config
        layout = cfg.layout(workload.k)
        timing = cfg.timing
        rows = self.mean_pattern_rows(workload, self.etm_enabled)
        # Hits: ETM pipeline flush (on average half the segments) + 2
        # payload activations; CF itself overlaps with the next query.
        num_segments = -(-layout.row_bits // DEFAULT_SEGMENT_SIZE)
        flush_rows = num_segments / 2.0
        hit_extra_rows = 2.0 + flush_rows
        matching_ns = rows * timing.row_cycle
        matching_ns += workload.hit_rate * hit_extra_rows * timing.row_cycle
        # Bank I/O: query-batch replacement writes + request/response.
        writes_per_query = layout.batch_write_commands / layout.queries_per_group
        io_ns = writes_per_query * timing.tCCD + self._io_common_ns(workload)
        # Energy.
        act_nj = cfg.energy.sieve_activation_energy_nj(timing)
        energy_nj = (rows + workload.hit_rate * hit_extra_rows) * act_nj
        energy_nj += writes_per_query * cfg.energy.write_burst_energy_nj(timing)
        energy_nj += self._io_common_nj(workload)
        return QueryCost(matching_ns, io_ns, energy_nj)


# ---------------------------------------------------------------------------
# Type-2
# ---------------------------------------------------------------------------


class Type2Model(SieveModel):
    """Type-2: compute buffer per subarray group, LISA-style row relay.

    One relay at a time per bank (only two sets of sense amplifiers may
    be enabled simultaneously), so a bank has a single matching stream
    whose per-row cost grows with the hop distance to the group's
    compute buffer.
    """

    streams_per_bank = 1

    def __init__(
        self,
        config: Optional[SieveModelConfig] = None,
        compute_buffers_per_bank: int = 16,
        etm_enabled: bool = True,
    ) -> None:
        super().__init__(config)
        geometry = self.config.geometry
        if compute_buffers_per_bank <= 0:
            raise ModelError("compute_buffers_per_bank must be positive")
        if compute_buffers_per_bank > geometry.subarrays_per_bank:
            raise ModelError(
                "more compute buffers than subarrays per bank "
                f"({geometry.subarrays_per_bank})"
            )
        self.compute_buffers_per_bank = compute_buffers_per_bank
        self.etm_enabled = etm_enabled

    @property
    def design(self) -> str:  # type: ignore[override]
        suffix = "" if self.etm_enabled else ".noETM"
        return f"T2.{self.compute_buffers_per_bank}CB{suffix}"

    @property
    def subarrays_per_group(self) -> int:
        return -(-self.config.geometry.subarrays_per_bank // self.compute_buffers_per_bank)

    @property
    def mean_hops(self) -> float:
        """Average subarray crossings for a row to reach its group's CB."""
        return (self.subarrays_per_group + 1) / 2.0

    def query_cost(self, workload: WorkloadStats) -> QueryCost:
        cfg = self.config
        layout = cfg.layout(workload.k)
        timing = cfg.timing
        hop_ns = hop_delay_ns(timing.tRAS)
        rows = self.mean_pattern_rows(workload, self.etm_enabled)
        per_row_ns = timing.row_cycle + self.mean_hops * hop_ns
        num_segments = -(-layout.row_bits // DEFAULT_SEGMENT_SIZE)
        hit_extra_rows = 2.0 + num_segments / 2.0
        matching_ns = rows * per_row_ns
        matching_ns += workload.hit_rate * hit_extra_rows * timing.row_cycle
        writes_per_query = layout.batch_write_commands / layout.queries_per_group
        io_ns = writes_per_query * timing.tCCD + self._io_common_ns(workload)
        # Energy: base activation + relay sense-amp chains per hop.  The
        # relay settles ~8x faster than a full activation (SPICE), but it
        # still drives the neighbour's bitlines rail-to-rail, so each hop
        # costs about half an activation — this is why the paper finds
        # "Type-2 with sparse compute buffers less energy efficient".
        act_nj = cfg.energy.sieve_activation_energy_nj(timing)
        relay_nj = cfg.energy.activation_energy_nj(timing) / 2.0  # per hop
        energy_nj = rows * (act_nj + self.mean_hops * relay_nj)
        energy_nj += workload.hit_rate * hit_extra_rows * act_nj
        energy_nj += writes_per_query * cfg.energy.write_burst_energy_nj(timing)
        energy_nj += self._io_common_nj(workload)
        return QueryCost(matching_ns, io_ns, energy_nj)


# ---------------------------------------------------------------------------
# Type-1
# ---------------------------------------------------------------------------


class Type1Model(SieveModel):
    """Type-1: matching at the chip I/O, one stream per bank.

    Every activated row is streamed batch-by-batch (64 bits per burst)
    into the Matcher Array; the Skip-Bits Register prunes batches whose
    candidates have all died, and the Start-Batch Register skips the
    scan over leading dead batches.  Type-1 rows hold references only
    (queries live in the Query Register), so all 8192 columns are
    candidates.
    """

    streams_per_bank = 1

    #: Batch reads travel bank->center strip only (no off-chip DQ
    #: drivers/ODT), so they cost a fraction of a datasheet IDD4R burst.
    INTERNAL_BURST_ENERGY_FACTOR = 0.5

    def __init__(
        self,
        config: Optional[SieveModelConfig] = None,
        etm_enabled: bool = True,
    ) -> None:
        super().__init__(config)
        self.etm_enabled = etm_enabled

    @property
    def design(self) -> str:  # type: ignore[override]
        suffix = "" if self.etm_enabled else ".noETM"
        return f"T1{suffix}"

    def live_batches_by_row(self, workload: WorkloadStats) -> List[float]:
        """Expected live batches at each pattern row.

        Candidates surviving ``b`` compared bits ~ refs x 2^-b (random
        bit agreement); a batch stays live while it holds >= 1 live
        candidate.
        """
        geometry = self.config.geometry
        num_batches = geometry.batches_per_row
        refs_per_row = float(geometry.row_bits)
        live = []
        for b in range(2 * workload.k):
            candidates = refs_per_row * 2.0**-b
            expected = num_batches * (1.0 - (1.0 - 1.0 / num_batches) ** candidates)
            live.append(min(num_batches, max(expected, 0.0)))
        return live

    def query_cost(self, workload: WorkloadStats) -> QueryCost:
        cfg = self.config
        timing = cfg.timing
        total_rows = 2 * workload.k
        live = self.live_batches_by_row(workload)
        if self.etm_enabled:
            # Termination row distribution from the ESP model.
            probs = workload.esp.probabilities
        else:
            probs = tuple([0.0] * (total_rows - 1) + [1.0])
        # Expected rows and batch reads for a miss.
        miss_rows = sum((i + 1) * p for i, p in enumerate(probs))
        miss_batches = 0.0
        for term_row, p in enumerate(probs, start=1):
            miss_batches += p * sum(live[:term_row])
        hit_rows = float(total_rows)
        hit_batches = sum(live)
        hr = workload.hit_rate
        rows = hr * hit_rows + (1 - hr) * miss_rows
        batches = hr * hit_batches + (1 - hr) * miss_batches
        # Per row: activation; per live batch: one burst + matcher/SRAM
        # access (overlapped with the burst, Section VI-A).
        matching_ns = rows * timing.row_cycle + batches * timing.tCCD
        # Hits: offset + payload fetch (two activations + two bursts).
        matching_ns += hr * (2 * timing.row_cycle + 2 * timing.tCCD)
        io_ns = self._io_common_ns(workload)
        act_nj = cfg.energy.activation_energy_nj(timing)  # no matcher rows
        burst_nj = (
            self.INTERNAL_BURST_ENERGY_FACTOR
            * cfg.energy.read_burst_energy_nj(timing)
        )
        energy_nj = rows * act_nj
        energy_nj += batches * burst_nj
        energy_nj += hr * (2 * act_nj + 2 * burst_nj)
        energy_nj += self._io_common_nj(workload)
        return QueryCost(matching_ns, io_ns, energy_nj)
