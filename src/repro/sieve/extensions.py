"""Future-work design points the paper names but does not evaluate.

Section VII: "We plan to evaluate Sieve in 3D-stacked context as future
work" and "We plan to evaluate NVM-based Sieve in future work".  This
module builds both as configuration variants of the same Type-3 model,
so the comparison is apples-to-apples:

* **HBM2 Sieve** — a 3D-stacked device: far more banks per GB (16
  channels x 16 banks per 8 GB stack), slightly slower row timing, and a
  much tighter thermal envelope (stacked dies).  Throughput per GB is
  dramatically higher; capacity per device is lower, so large reference
  sets need several stacks.
* **NVM Sieve** — a dense non-volatile array (ReRAM/FeFET class): ~2x
  the row cycle, ~4x the density, no refresh and near-zero standby
  power; per-activation energy higher.

Both reuse the column-wise layout, matchers, and ETM unchanged — the
contribution ports, which is exactly the paper's claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..dram.energy import DramEnergy
from ..dram.geometry import DramGeometry
from ..dram.timing import DramTiming
from .perfmodel import PerfResult, SieveModelConfig, Type3Model, WorkloadStats


class ExtensionError(ValueError):
    """Raised on invalid extension configurations."""


#: HBM2 timing: slower core (lower voltage), same order of row cycle.
HBM2_TIMING = DramTiming(
    tCK=1.0,
    tRCD=14.0,
    tRAS=33.0,
    tRP=15.0,
    tCCD=2.0,  # wide, fast column interface per pseudo-channel
    tCAS=14.0,
    burst_length=4,
)

#: HBM2 energy: lower-voltage core, shorter interconnect.
HBM2_ENERGY = DramEnergy(
    vdd=1.2,
    idd0=45.0,
    idd2n=28.0,
    idd3n=36.0,
    idd4r=110.0,
    idd4w=105.0,
    idd5=160.0,
)

#: NVM (ReRAM/FeFET-class) "timing": row sensing is ~2x DRAM's.
NVM_TIMING = DramTiming(
    tCK=1.0,
    tRCD=30.0,
    tRAS=70.0,
    tRP=30.0,
    tCCD=5.0,
    tCAS=30.0,
    burst_length=8,
    tREFI=1e12,  # non-volatile: effectively no refresh
    tRFC=1.0,
)

#: NVM energy: higher per-access energy, negligible standby.
NVM_ENERGY = DramEnergy(
    vdd=1.2,
    idd0=90.0,
    idd2n=2.0,
    idd3n=4.0,
    idd4r=150.0,
    idd4w=160.0,
    idd5=3.0,
)


def hbm_geometry(stacks: int = 4) -> DramGeometry:
    """A device of ``stacks`` 8 GB HBM2 stacks.

    Each stack exposes 16 channels x 16 banks; model a channel pair as a
    'rank' so total banks = stacks x 256.  Subarrays mirror the DDR4
    organization (the Sieve layout is unchanged).
    """
    if stacks <= 0:
        raise ExtensionError("stacks must be positive")
    # 8 GB / (16 ch x 16 banks) = 32 MB/bank = 16 subarrays of 2 MB.
    return DramGeometry(
        ranks=stacks * 16,
        banks_per_rank=16,
        subarrays_per_bank=16,
        rows_per_subarray=2048,
        row_bits=8192,
    )


def nvm_geometry(capacity_gib: float = 128.0) -> DramGeometry:
    """A dense NVM device: 4x DRAM density at the same bank count."""
    return DramGeometry.for_capacity(
        capacity_gib, ranks=16, banks_per_rank=8, rows_per_subarray=8192
    )


def hbm_config(stacks: int = 4) -> SieveModelConfig:
    """Type-3 Sieve on HBM2 stacks."""
    return SieveModelConfig(
        geometry=hbm_geometry(stacks),
        timing=HBM2_TIMING,
        energy=HBM2_ENERGY,
    )


def nvm_config(capacity_gib: float = 128.0) -> SieveModelConfig:
    """Type-3 Sieve on a dense NVM array."""
    return SieveModelConfig(
        geometry=nvm_geometry(capacity_gib),
        timing=NVM_TIMING,
        energy=NVM_ENERGY,
    )


@dataclass(frozen=True)
class VariantResult:
    """One technology variant's outcome on a workload."""

    name: str
    capacity_gib: float
    total_banks: int
    result: PerfResult

    @property
    def qps(self) -> float:
        return self.result.breakdown["num_kmers"] / self.result.time_s

    @property
    def qps_per_gib(self) -> float:
        return self.qps / self.capacity_gib


def technology_comparison(
    workload: WorkloadStats,
    concurrent_subarrays: int = 8,
    hbm_stacks: int = 4,
    nvm_capacity_gib: float = 128.0,
) -> List[VariantResult]:
    """DDR4 vs HBM2 vs NVM Sieve on the same workload.

    The expected shape: HBM wins throughput per GB (bank count), NVM
    wins capacity and standby energy, DDR4 sits between — which is why
    the paper chose DRAM "for its maturity and availability" while
    flagging both alternatives as future work.
    """
    variants = []
    ddr4 = SieveModelConfig()
    for name, cfg in (
        ("DDR4 (paper)", ddr4),
        (f"HBM2 x{hbm_stacks} stacks", hbm_config(hbm_stacks)),
        (f"NVM {nvm_capacity_gib:.0f} GiB", nvm_config(nvm_capacity_gib)),
    ):
        sa = min(concurrent_subarrays, cfg.geometry.subarrays_per_bank)
        model = Type3Model(cfg, concurrent_subarrays=sa)
        variants.append(
            VariantResult(
                name=name,
                capacity_gib=cfg.geometry.capacity_gib,
                total_banks=cfg.geometry.total_banks,
                result=model.run(workload),
            )
        )
    return variants


def scaled_refresh_penalty(timing: DramTiming) -> float:
    """Fraction of time lost to refresh — zero for the NVM variant."""
    return timing.refresh_overhead
