"""Bit-accurate functional simulator of a Sieve Type-1 bank (Figure 12).

Type-1 keeps the DRAM bank untouched and matches at the chip I/O:

* references are stored column-wise exactly as in Type-2/3, but the row
  is *burst-read* 64 bits (one batch) at a time into a 64-bit Matcher
  Array next to the I/O interface — there are no matchers in the row
  buffer and no query replication in the array (the query lives in the
  Query Register);
* an 8-Kbit SRAM Buffer holds one running match bit per reference
  (128 entries x 64 bits, one entry per batch);
* the Skip-Bits Register (SkBR) holds one live bit per batch, so dead
  batches are never burst-read, and the Start-Batch Register (StBR)
  skips the scan over leading dead batches;
* matching a query is terminated (Type-1's ETM) when every skip bit is
  zero; payload retrieval reuses the Region-2/3 layout.

The simulator counts exactly the events the analytic
:class:`~repro.sieve.perfmodel.Type1Model` charges — row activations,
batch burst reads, skip-bit scan cycles — so the two can be
cross-validated on the same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..dram.subarray import Subarray
from .functional import _bits_to_int, _int_to_bits
from .layout import OFFSET_BITS, PAYLOAD_BITS, LayoutError

#: Bank I/O width: one burst delivers one batch of reference bits.
BATCH_BITS = 64


class Type1Error(RuntimeError):
    """Raised on protocol errors in the Type-1 simulator."""


@dataclass(frozen=True)
class Type1Outcome:
    """Result of matching one query on a Type-1 bank."""

    query: int
    hit: bool
    payload: Optional[int]
    column: Optional[int]
    rows_activated: int
    batch_reads: int
    skip_scan_cycles: int
    terminated_early: bool


@dataclass(frozen=True)
class Type1Layout:
    """Region map of a Type-1 bank's reference area.

    Type-1 has no pattern groups: every column of the row is a
    reference (queries never enter the array).
    """

    k: int
    row_bits: int = 8192
    rows: int = 512

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise LayoutError(f"k must be positive, got {self.k}")
        if self.row_bits % BATCH_BITS:
            raise LayoutError("row_bits must be a multiple of the 64-bit batch")
        if self.total_rows_used > self.rows:
            raise LayoutError(
                f"layout needs {self.total_rows_used} rows, bank region has "
                f"{self.rows}"
            )

    @property
    def kmer_rows(self) -> int:
        return 2 * self.k

    @property
    def refs_per_row(self) -> int:
        return self.row_bits

    @property
    def num_batches(self) -> int:
        return self.row_bits // BATCH_BITS

    @property
    def offsets_per_row(self) -> int:
        return self.row_bits // OFFSET_BITS

    @property
    def offset_rows(self) -> int:
        return -(-self.refs_per_row // self.offsets_per_row)

    @property
    def payloads_per_row(self) -> int:
        return self.row_bits // PAYLOAD_BITS

    @property
    def payload_rows(self) -> int:
        return -(-self.refs_per_row // self.payloads_per_row)

    @property
    def total_rows_used(self) -> int:
        return self.kmer_rows + self.offset_rows + self.payload_rows

    def offset_location(self, slot: int) -> Tuple[int, int]:
        row, entry = divmod(slot, self.offsets_per_row)
        return self.kmer_rows + row, entry * OFFSET_BITS

    def payload_location(self, index: int) -> Tuple[int, int]:
        row, entry = divmod(index, self.payloads_per_row)
        return self.kmer_rows + self.offset_rows + row, entry * PAYLOAD_BITS


class Type1BankSim:
    """One Type-1 bank: DRAM region + I/O-side matching machinery."""

    def __init__(
        self,
        layout: Type1Layout,
        records: Sequence[Tuple[int, int]],
        etm_enabled: bool = True,
    ) -> None:
        if len(records) > layout.refs_per_row:
            raise LayoutError(
                f"{len(records)} records exceed row capacity {layout.refs_per_row}"
            )
        for (a, _), (b, _) in zip(records, records[1:]):
            if b <= a:
                raise Type1Error("records must be sorted by k-mer, unique")
        self.layout = layout
        self.etm_enabled = etm_enabled
        self.records = list(records)
        self.array = Subarray(layout.rows, layout.row_bits)
        # SRAM buffer: one running match bit per reference column,
        # organized as (num_batches x 64) like the real 2D macro.
        self._sram = np.zeros(layout.row_bits, dtype=np.uint8)
        self._skip_bits = np.zeros(layout.num_batches, dtype=np.uint8)
        self._valid = np.zeros(layout.row_bits, dtype=np.uint8)
        self._valid[: len(records)] = 1
        self._load()

    def _load(self) -> None:
        layout = self.layout
        from ..genomics.encoding import transpose_kmers

        bits = transpose_kmers([k for k, _ in self.records], layout.k)
        for row in range(layout.kmer_rows):
            image = np.zeros(layout.row_bits, dtype=np.uint8)
            image[: len(self.records)] = bits[row]
            self.array.load_row(row, image)
        for slot in range(len(self.records)):
            row, col = layout.offset_location(slot)
            self.array.load_bits(row, col, _int_to_bits(slot, OFFSET_BITS))
        for slot, (_, payload) in enumerate(self.records):
            row, col = layout.payload_location(slot)
            self.array.load_bits(row, col, _int_to_bits(payload, PAYLOAD_BITS))

    # -- matching -------------------------------------------------------------

    def match(self, query: int) -> Type1Outcome:
        """Match one query k-mer against every reference in the bank."""
        layout = self.layout
        if query < 0 or query >= 1 << layout.kmer_rows:
            raise Type1Error(f"query {query} out of range for k={layout.k}")
        # Preset: SRAM result bits to 1 for valid columns, skip bits to
        # 1 for batches holding at least one valid reference.
        self._sram[:] = self._valid
        for batch in range(layout.num_batches):
            lo = batch * BATCH_BITS
            self._skip_bits[batch] = 1 if self._valid[lo : lo + BATCH_BITS].any() else 0
        query_bits = _int_to_bits(query, layout.kmer_rows)

        rows_activated = 0
        batch_reads = 0
        skip_scans = 0
        terminated_early = False
        for bit in range(layout.kmer_rows):
            if self.etm_enabled and not self._skip_bits.any():
                terminated_early = True
                break
            row = self.array.activate(bit)
            rows_activated += 1
            qbit = int(query_bits[bit])
            # StBR: jump to the first live batch; then scan skip bits,
            # one DRAM cycle each, bursting only live batches.
            live = np.flatnonzero(self._skip_bits)
            if live.size:
                start = int(live[0])
                skip_scans += layout.num_batches - start
            for batch in live:
                lo = int(batch) * BATCH_BITS
                ref_bits = row[lo : lo + BATCH_BITS]
                batch_reads += 1
                # 64-bit Matcher Array: XNOR + AND with the SRAM entry.
                xnor = np.uint8(1) - ((ref_bits ^ np.uint8(qbit)) & np.uint8(1))
                entry = self._sram[lo : lo + BATCH_BITS] & xnor
                self._sram[lo : lo + BATCH_BITS] = entry
                if not entry.any():
                    self._skip_bits[batch] = 0
            self.array.precharge()
        if self._sram.any():
            return self._retrieve(query, rows_activated, batch_reads, skip_scans)
        return Type1Outcome(
            query=query,
            hit=False,
            payload=None,
            column=None,
            rows_activated=rows_activated,
            batch_reads=batch_reads,
            skip_scan_cycles=skip_scans,
            terminated_early=terminated_early,
        )

    def _retrieve(
        self, query: int, rows: int, batches: int, scans: int
    ) -> Type1Outcome:
        """Column finder + payload fetch (Figure 12's control logic)."""
        live = np.flatnonzero(self._sram)
        if live.size == 0:
            raise Type1Error("expected at least one live result bit, found 0")
        # batch index via skip bits, then a small shifter inside it:
        # column = batch_index * batch_size + in-batch index.  Like the
        # Type-2/3 Column Finder, the shifter stops at the first live
        # bit; duplicates only arise under fault injection.
        column = int(live[0])
        batch_index, in_batch = divmod(column, BATCH_BITS)
        assert batch_index * BATCH_BITS + in_batch == column
        layout = self.layout
        orow, ocol = layout.offset_location(column)
        bits = self.array.activate(orow)
        offset = _bits_to_int(bits[ocol : ocol + OFFSET_BITS])
        self.array.precharge()
        # Decoder wrap for fault-corrupted offsets (see functional.py).
        offset %= layout.refs_per_row
        prow, pcol = layout.payload_location(offset)
        bits = self.array.activate(prow)
        payload = _bits_to_int(bits[pcol : pcol + PAYLOAD_BITS])
        self.array.precharge()
        return Type1Outcome(
            query=query,
            hit=True,
            payload=payload,
            column=column,
            rows_activated=rows + 2,
            batch_reads=batches + 2,  # offset + payload transfers
            skip_scan_cycles=scans,
            terminated_early=False,
        )
