"""Functional Sieve device: index + loaded subarrays + batch dispatch.

Ties the pieces of Section IV together end-to-end at functional level:
the host consults the k-mer-to-subarray index, groups queries headed to
the same subarray into batches of (up to) 64, loads each batch into the
pattern groups, and matches slot by slot.  Responses carry the payload
plus the micro-events (rows activated, flush/CF cycles, write commands)
that the trace-driven performance model aggregates.

This is the model the tests validate against a plain
:class:`~repro.genomics.database.KmerDatabase`, and the model small
examples run; the paper-scale benchmarks use the analytic
:mod:`repro.sieve.perfmodel` parameterized by statistics measured here.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import (
    BackendCapabilities,
    BackendResult,
    BackendStats,
    classification_from_results,
    warn_deprecated,
)
from ..dram.geometry import DramGeometry
from ..genomics.database import KmerDatabase
from .functional import MatchOutcome, SieveSubarraySim
from .index import SubarrayIndex
from .layout import SubarrayLayout


class DeviceError(ValueError):
    """Raised on capacity or protocol errors."""


#: Answer to one k-mer request.  Since the PR-4 API unification this is
#: the shared :class:`repro.api.BackendResult` under its historical
#: name; ``subarray_id is None`` marks an index-filtered host-side miss.
DeviceResponse = BackendResult


@dataclass
class DeviceStats:
    """Aggregate functional counters across a device's lifetime.

    Calling a stats object (``device.stats()``) projects it down to the
    protocol-wide :class:`repro.api.BackendStats`, so the device
    satisfies :class:`repro.api.QueryBackend` while existing callers
    keep reading the rich attribute counters directly.
    """

    queries: int = 0
    hits: int = 0
    index_filtered: int = 0
    row_activations: int = 0
    write_commands: int = 0
    batches: int = 0
    rows_per_query: List[int] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0

    @property
    def dispatched(self) -> int:
        """Queries that actually reached a subarray."""
        return self.queries - self.index_filtered

    def __call__(self) -> BackendStats:
        """Protocol projection: uniform query/hit accounting."""
        return BackendStats(queries=self.queries, hits=self.hits)

    def absorb(self, other: "DeviceStats") -> None:
        """Fold another device's counters into this one (shard merge)."""
        self.queries += other.queries
        self.hits += other.hits
        self.index_filtered += other.index_filtered
        self.row_activations += other.row_activations
        self.write_commands += other.write_commands
        self.batches += other.batches
        self.rows_per_query.extend(other.rows_per_query)


class SieveDevice:
    """A functional Sieve accelerator loaded with a reference database.

    Implements the :class:`repro.api.QueryBackend` protocol
    structurally: ``stats`` is the rich :class:`DeviceStats` attribute,
    and *calling* it (``device.stats()``) yields the protocol-wide
    :class:`repro.api.BackendStats` projection.
    """

    def __init__(
        self,
        index: SubarrayIndex,
        subarrays: Dict[int, SieveSubarraySim],
        layout: SubarrayLayout,
        geometry: Optional[DramGeometry] = None,
        canonical: bool = False,
    ) -> None:
        self.index = index
        self.subarrays = subarrays
        self.layout = layout
        self.geometry = geometry
        #: Canonical databases store min(kmer, revcomp); the host must
        #: canonicalize queries before consulting the range index, just
        #: as the software classifiers do.
        self.canonical = canonical
        self.stats = DeviceStats()
        # Snapshot fault state at construction: a device loaded while an
        # active fault model was installed holds corrupted cells for its
        # whole lifetime, even after the injector is uninstalled.
        from ..faults import degraded_mode

        self.degraded = degraded_mode()

    def _normalize(self, kmer: int) -> int:
        if not self.canonical:
            return kmer
        from ..genomics.encoding import canonical_kmer

        return canonical_kmer(kmer, self.layout.k)

    @classmethod
    def from_database(
        cls,
        database: KmerDatabase,
        layout: Optional[SubarrayLayout] = None,
        geometry: Optional[DramGeometry] = None,
        etm_enabled: bool = True,
    ) -> "SieveDevice":
        """Transpose and load a database (the Section IV-C one-time cost)."""
        layout = layout or SubarrayLayout(k=database.k).with_max_layers()
        records = database.sorted_records()
        if not records:
            raise DeviceError("cannot load an empty database")
        index, chunks = SubarrayIndex.build(
            [kmer for kmer, _ in records], layout.refs_per_subarray
        )
        if geometry is not None and len(chunks) > geometry.total_subarrays:
            raise DeviceError(
                f"database needs {len(chunks)} subarrays but geometry "
                f"provides {geometry.total_subarrays}"
            )
        payload_of = dict(records)
        subarrays = {}
        for sid, chunk in enumerate(chunks):
            subarrays[sid] = SieveSubarraySim(
                layout,
                [(kmer, payload_of[kmer]) for kmer in chunk],
                etm_enabled=etm_enabled,
            )
        return cls(index, subarrays, layout, geometry, canonical=database.canonical)

    @classmethod
    def from_segments(
        cls,
        segment_dir,
        layout: Optional[SubarrayLayout] = None,
        geometry: Optional[DramGeometry] = None,
        etm_enabled: bool = True,
    ) -> "SieveDevice":
        """Load a device from a persisted mmap segment directory.

        Routes :meth:`from_database` through :meth:`KmerDatabase.
        open_mmap`, so a replica boots from the same content-hashed
        image the :mod:`repro.cluster` workers map — the transpose
        reads the shared read-only arrays instead of a rebuilt dict.
        """
        return cls.from_database(
            KmerDatabase.open_mmap(segment_dir),
            layout=layout,
            geometry=geometry,
            etm_enabled=etm_enabled,
        )

    # -- query paths ----------------------------------------------------------

    def query(
        self,
        kmers: Sequence[int],
        *,
        batched: bool = True,
        kernel: Optional[str] = None,
    ) -> List[DeviceResponse]:
        """The unified batch path: group per destination subarray,
        batches of <= 64 (:class:`repro.api.QueryBackend` surface).

        Responses are returned in request order even though requests to
        different subarrays complete out of order (Section IV-E: the host
        accumulates payloads per sequence, no reordering needed — we
        reorder only for API convenience).

        ``batched=True`` (the default) matches each loaded batch through
        the vectorized :meth:`~repro.sieve.functional.SieveSubarraySim.
        match_all` fast path — ``kernel`` selects its engine (the
        bit-packed uint64 kernel by default, ``"vector"`` for the PR-2
        per-query path); ``batched=False`` replays the scalar
        command-by-command path.  All paths produce identical responses
        and functional counters (the equivalence is test-enforced).

        ``kernel=None`` (the default) resolves through
        :func:`repro.sieve.kernels.default_kernel`, so ``SIEVE_KERNEL``
        can force an engine (``packed-numpy``, ``vector``, ...) on the
        auto path; explicit callers stay pinned regardless of the
        environment.
        """
        from . import kernels as _kernels

        if kernel is None:
            kernel = _kernels.default_kernel()
        responses: List[Optional[DeviceResponse]] = [None] * len(kmers)
        per_dest: Dict[Tuple[int, int], List[Tuple[int, int]]] = defaultdict(list)
        kmers = [self._normalize(kmer) for kmer in kmers]
        for pos, kmer in enumerate(kmers):
            sid = self.index.route(kmer)
            if sid is None:
                self.stats.queries += 1
                self.stats.index_filtered += 1
                self.stats.rows_per_query.append(0)
                responses[pos] = DeviceResponse(kmer, False, None, None, 0, 0)
            else:
                layer = self.subarrays[sid].route_layer(kmer)
                per_dest[(sid, layer)].append((pos, kmer))
        batch_size = self.layout.queries_per_group
        for (sid, layer), requests in per_dest.items():
            sim = self.subarrays[sid]
            for start in range(0, len(requests), batch_size):
                batch = requests[start : start + batch_size]
                self.stats.write_commands += sim.load_query_batch(
                    [kmer for _, kmer in batch], layer
                )
                self.stats.batches += 1
                if batched:
                    outcomes = sim.match_all(kernel=kernel)
                else:
                    outcomes = [sim.match_slot(slot) for slot in range(len(batch))]
                for (pos, _), outcome in zip(batch, outcomes):
                    responses[pos] = self._record(outcome, sid)
        return [r for r in responses if r is not None]

    def lookup(self, kmer: int) -> DeviceResponse:
        """Deprecated single-query shim over :meth:`query`.

        Equivalent to the historical scalar path: one k-mer routed,
        loaded as its own batch of one, and matched command by command
        (identical responses and functional counters).
        """
        warn_deprecated("SieveDevice.lookup()", "SieveDevice.query()")
        return self.query([kmer], batched=False)[0]

    def lookup_many(
        self, kmers: Sequence[int], batched: bool = True
    ) -> List[DeviceResponse]:
        """Deprecated batch shim over :meth:`query`."""
        warn_deprecated("SieveDevice.lookup_many()", "SieveDevice.query()")
        return self.query(kmers, batched=batched)

    # -- protocol surface ------------------------------------------------------

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="sieve-device",
            kind="sieve",
            k=self.layout.k,
            canonical=self.canonical,
            batched=True,
            max_batch=self.layout.queries_per_group,
            simulated_latency=True,
            degraded=self.degraded,
        )

    def perf_counters(self) -> Dict[str, int]:
        """Monotonic micro-event counters for per-batch cost deltas."""
        return {
            "row_activations": self.stats.row_activations,
            "write_commands": self.stats.write_commands,
        }

    def batch_cost(self, delta: Dict[str, int]) -> Tuple[float, float]:
        """Price a counter delta in simulated (ns, nJ) via the same
        command-ledger rates :meth:`to_ledger` charges."""
        from ..dram.commands import Command, CommandLedger
        from ..dram.energy import DDR4_ENERGY, SIEVE_ACTIVATION_OVERHEAD
        from ..dram.timing import SIEVE_TIMING

        ledger = CommandLedger(
            timing=SIEVE_TIMING,
            energy=DDR4_ENERGY,
            activation_energy_factor=1.0 + SIEVE_ACTIVATION_OVERHEAD,
        )
        ledger.record(Command.ACTIVATE, delta.get("row_activations", 0))
        ledger.record(Command.WRITE_BURST, delta.get("write_commands", 0))
        return (ledger.serial_time_ns, ledger.energy_nj)

    def classify(self, read):
        """Classify one read through the shared vote-counting path."""
        results = self.query(list(read.kmers(self.layout.k)))
        return classification_from_results(
            read.seq_id, results, true_taxon=read.taxon_id
        )

    def _record(self, outcome: MatchOutcome, sid: int) -> DeviceResponse:
        self.stats.queries += 1
        self.stats.row_activations += outcome.rows_activated
        self.stats.rows_per_query.append(outcome.rows_activated)
        if outcome.hit:
            self.stats.hits += 1
        return DeviceResponse(
            query=outcome.query,
            hit=outcome.hit,
            payload=outcome.payload,
            subarray_id=sid,
            rows_activated=outcome.rows_activated,
            etm_flush_cycles=outcome.etm_flush_cycles,
        )

    # -- accounting ----------------------------------------------------------------

    def to_ledger(self, timing=None, energy=None):
        """Convert accumulated functional counters into a command ledger.

        Bridges the bit-accurate model to the timing/energy substrate:
        the ledger prices every row activation (at the +6 % Sieve rate)
        and query-batch write burst this device has executed, yielding a
        serialized-time/energy figure for the functional run — the
        small-scale ground truth the analytic models extrapolate from.
        """
        from ..dram.commands import Command, CommandLedger
        from ..dram.energy import DDR4_ENERGY, SIEVE_ACTIVATION_OVERHEAD
        from ..dram.timing import SIEVE_TIMING

        ledger = CommandLedger(
            timing=timing or SIEVE_TIMING,
            energy=energy or DDR4_ENERGY,
            activation_energy_factor=1.0 + SIEVE_ACTIVATION_OVERHEAD,
        )
        ledger.record(Command.ACTIVATE, self.stats.row_activations)
        ledger.record(Command.WRITE_BURST, self.stats.write_commands)
        return ledger

    # -- capacity ---------------------------------------------------------------

    def loaded_subarrays(self) -> int:
        return len(self.subarrays)

    def bank_of(self, subarray_id: int) -> Optional[int]:
        """Bank a loaded subarray belongs to under the device geometry
        (round-robin placement across banks, the layout that spreads
        query traffic evenly — Section IV-A's co-location argument)."""
        if self.geometry is None:
            return None
        if subarray_id not in self.subarrays:
            raise DeviceError(f"subarray {subarray_id} is not loaded")
        return subarray_id % self.geometry.total_banks

    def per_bank_activations(self) -> Dict[int, int]:
        """Row activations per bank (functional load-balance view)."""
        if self.geometry is None:
            raise DeviceError("device was built without a geometry")
        counts: Dict[int, int] = {}
        for sid, sim in self.subarrays.items():
            bank = sid % self.geometry.total_banks
            counts[bank] = counts.get(bank, 0) + sim.array.stats.activations
        return counts

    def utilization(self) -> Optional[float]:
        """Fraction of the geometry's subarrays holding data."""
        if self.geometry is None:
            return None
        return len(self.subarrays) / self.geometry.total_subarrays
