"""Sieve core: the paper's contribution.

Bit-accurate functional models of the column-wise layout, matcher
circuitry, Early Termination Mechanism, Column Finder, k-mer-to-subarray
index, and the whole device (``SieveDevice``), plus the trace-driven
analytic performance/energy models of the three accelerator designs
(``Type1Model``, ``Type2Model``, ``Type3Model``).
"""

from .column_finder import ColumnFinder, ColumnFinderError, ColumnFindResult
from .controller import (
    BankEventSim,
    BankSimResult,
    SimRequest,
    sample_requests,
    validate_steady_state,
)
from .device import DeviceError, DeviceResponse, DeviceStats, SieveDevice
from .device_sim import (
    DeviceEventSim,
    DeviceSimConfig,
    DeviceSimResult,
    simulate_device,
)
from .extensions import (
    VariantResult,
    hbm_config,
    nvm_config,
    technology_comparison,
)
from .etm import DEFAULT_SEGMENT_SIZE, EtmError, EtmPipeline
from .functional import FunctionalError, MatchOutcome, SieveSubarraySim
from .index import INDEX_ENTRY_BYTES, IndexEntry, SubarrayIndex
from .layout import (
    GROUP_WIDTH,
    OFFSET_BITS,
    PAYLOAD_BITS,
    QUERIES_PER_GROUP,
    REFS_PER_GROUP,
    LayoutError,
    SubarrayLayout,
)
from .loading import LoadCostModel, LoadCostReport, LoadingError
from .matcher import MatcherArray, MatcherError
from .type1 import Type1BankSim, Type1Layout, Type1Outcome
from .type2 import Type2GroupSim, Type2Outcome
from .perfmodel import (
    EspModel,
    ModelError,
    PerfResult,
    QueryCost,
    SieveModel,
    SieveModelConfig,
    Type1Model,
    Type2Model,
    Type3Model,
    WorkloadStats,
)

__all__ = [
    "BankEventSim",
    "BankSimResult",
    "SimRequest",
    "sample_requests",
    "validate_steady_state",
    "VariantResult",
    "hbm_config",
    "nvm_config",
    "technology_comparison",
    "Type1BankSim",
    "Type1Layout",
    "Type1Outcome",
    "Type2GroupSim",
    "Type2Outcome",
    "LoadCostModel",
    "LoadCostReport",
    "LoadingError",
    "ColumnFinder",
    "ColumnFinderError",
    "ColumnFindResult",
    "DeviceError",
    "DeviceResponse",
    "DeviceStats",
    "SieveDevice",
    "DeviceEventSim",
    "DeviceSimConfig",
    "DeviceSimResult",
    "simulate_device",
    "DEFAULT_SEGMENT_SIZE",
    "EtmError",
    "EtmPipeline",
    "FunctionalError",
    "MatchOutcome",
    "SieveSubarraySim",
    "INDEX_ENTRY_BYTES",
    "IndexEntry",
    "SubarrayIndex",
    "GROUP_WIDTH",
    "OFFSET_BITS",
    "PAYLOAD_BITS",
    "QUERIES_PER_GROUP",
    "REFS_PER_GROUP",
    "LayoutError",
    "SubarrayLayout",
    "MatcherArray",
    "MatcherError",
    "EspModel",
    "ModelError",
    "PerfResult",
    "QueryCost",
    "SieveModel",
    "SieveModelConfig",
    "Type1Model",
    "Type2Model",
    "Type3Model",
    "WorkloadStats",
]
