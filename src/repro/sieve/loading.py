"""Database transposition and load cost (paper Section IV-C).

Loading a reference set into Sieve is a one-time cost with three stages:

1. **transpose** on the host — converting row-major k-mer records into
   the column-wise bit planes (`SubarrayLayout.ref_bit_matrix`); the
   result can be stored and reused, so this is paid once per database
   *ever*;
2. **ship** the transposed image over the device interface;
3. **write** the image into the DRAM arrays — banks load in parallel,
   each paced by its I/O write bandwidth.

The paper argues k-mer databases are stable for long periods, so this
cost amortizes over the device's lifetime; this module quantifies the
claim (how many queries until the load is amortized).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.geometry import SIEVE_32GB, DramGeometry
from ..dram.timing import SIEVE_TIMING, DramTiming
from ..genomics.database import KMER_RECORD_BYTES
from ..interconnect.pcie import PCIE4_X16, PcieLink
from .layout import OFFSET_BITS, PAYLOAD_BITS, SubarrayLayout


class LoadingError(ValueError):
    """Raised on invalid load parameters."""


@dataclass(frozen=True)
class LoadCostReport:
    """Breakdown of a one-time database load."""

    num_kmers: int
    image_bytes: int
    transpose_s: float
    transfer_s: float
    write_s: float

    @property
    def total_s(self) -> float:
        return self.transpose_s + self.transfer_s + self.write_s

    @property
    def online_s(self) -> float:
        """Time with a pre-transposed image on disk (the common case)."""
        return self.transfer_s + self.write_s

    def amortization_queries(
        self, ns_per_query: float, overhead_fraction: float = 0.01
    ) -> float:
        """Queries after which the *online* load cost has shrunk to
        ``overhead_fraction`` of cumulative query time."""
        if ns_per_query <= 0:
            raise LoadingError("ns_per_query must be positive")
        if not 0.0 < overhead_fraction < 1.0:
            raise LoadingError("overhead_fraction must be in (0, 1)")
        return self.online_s / (overhead_fraction * ns_per_query * 1e-9)


@dataclass(frozen=True)
class LoadCostModel:
    """Cost model for the Section IV-C load path."""

    geometry: DramGeometry = SIEVE_32GB
    timing: DramTiming = SIEVE_TIMING
    link: PcieLink = PCIE4_X16
    #: Host transpose throughput: bit-twiddling a packed record stream
    #: (SIMD-friendly), bytes of *input* records per second.
    host_transpose_bytes_per_s: float = 2.0e9

    def image_bytes(self, num_kmers: int, k: int) -> int:
        """On-device footprint: patterns + offsets + payloads."""
        if num_kmers <= 0:
            raise LoadingError("num_kmers must be positive")
        pattern_bits = num_kmers * 2 * k
        side_bits = num_kmers * (OFFSET_BITS + PAYLOAD_BITS)
        return (pattern_bits + side_bits + 7) // 8

    def report(self, num_kmers: int, k: int) -> LoadCostReport:
        """Full load-cost breakdown for a database of ``num_kmers``."""
        layout = SubarrayLayout(
            k=k,
            row_bits=self.geometry.row_bits,
            rows_per_subarray=self.geometry.rows_per_subarray,
        ).with_max_layers()
        if num_kmers > layout.refs_per_subarray * self.geometry.total_subarrays:
            raise LoadingError(
                f"{num_kmers} k-mers exceed device capacity "
                f"({layout.refs_per_subarray * self.geometry.total_subarrays})"
            )
        image = self.image_bytes(num_kmers, k)
        transpose = num_kmers * KMER_RECORD_BYTES / self.host_transpose_bytes_per_s
        transfer = image / (self.link.effective_gbs * 1e9)
        # Banks write in parallel; each 64-bit write burst takes tCCD.
        bursts = -(-image * 8 // 64)
        bursts_per_bank = -(-bursts // self.geometry.total_banks)
        write = bursts_per_bank * self.timing.tCCD * 1e-9
        return LoadCostReport(
            num_kmers=num_kmers,
            image_bytes=image,
            transpose_s=transpose,
            transfer_s=transfer,
            write_s=write,
        )
