"""Bit-packed first-divergence kernels (word-parallel Region-1 matching).

The PR-2 batched engine compares Region-1 reference columns against a
query one ``uint8`` *bit* per element.  These kernels pack the same bit
columns into ``uint64`` words (MSB-first, matching Region-1 row order:
row ``r`` lands at bit ``63 - r`` of word ``r // 64``) and compute every
query/column *first-divergence* row with one ``np.bitwise_xor`` pass
plus a vectorized first-set-bit trick — the word-granularity analogue
of what the sense-amplifier matchers do bit-serially.

Two interchangeable implementations sit behind
:func:`first_divergence`:

* ``"numpy"`` — always available.  The leading set bit of each XOR word
  is located through its big-endian byte view: ``argmax`` finds the
  first non-zero byte, a 256-entry table supplies the leading-zero
  count inside it.
* ``"numba"`` — an ``@njit`` scalar loop over the same packed words,
  available when the optional ``[compiled]`` extra is installed
  (``pip install .[compiled]``).  Selected automatically when
  importable; force either with ``SIEVE_KERNEL=numpy|numba``.

Both return identical ``int64`` matrices — the bit-identity property
suite (``tests/test_kernels_properties.py``) compares them against each
other and against the scalar simulator.  Tail bits past ``rows`` in the
last word are zero on both sides of the XOR by construction
(:func:`pack_bit_columns` zero-pads), so odd widths can never introduce
a phantom divergence.

This module is deliberately free of wall-clock reads (SV012) and of
mutable module state (SV009): fleet workers fork with these tables
mapped copy-on-write, and benchmarks time the kernels from outside.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

#: Bits per packed word.
WORD_BITS = 64

#: Environment override for the implementation choice.
KERNEL_ENV_VAR = "SIEVE_KERNEL"

try:  # pragma: no cover - exercised only with the [compiled] extra
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the container default
    _njit = None
    HAVE_NUMBA = False


class KernelError(ValueError):
    """Raised on invalid kernel inputs or implementation selection."""


def _build_pop8() -> np.ndarray:
    """Set-bit count of every byte value (numpy<2 popcount fallback)."""
    table = np.empty(256, dtype=np.uint8)
    for value in range(256):
        table[value] = bin(value).count("1")
    return table


_POP8 = _build_pop8()
_POP8.setflags(write=False)

#: ``np.bitwise_count`` landed in numpy 2.0; older interpreters fall
#: back to a byte-view table lookup with identical results.
_HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")


def bit_length64(words: np.ndarray) -> np.ndarray:
    """Per-element bit length of a uint64 array (0 for the zero word).

    Classic smear-then-popcount: OR the leading set bit into every
    lower position, then count the set bits.
    """
    smeared = words | (words >> np.uint64(1))
    smeared |= smeared >> np.uint64(2)
    smeared |= smeared >> np.uint64(4)
    smeared |= smeared >> np.uint64(8)
    smeared |= smeared >> np.uint64(16)
    smeared |= smeared >> np.uint64(32)
    if _HAVE_BITWISE_COUNT:
        return np.bitwise_count(smeared).astype(np.int64)
    counts = _POP8[smeared.view(np.uint8)]
    return counts.reshape(*smeared.shape, 8).sum(axis=-1, dtype=np.int64)


def words_for(rows: int) -> int:
    """Packed ``uint64`` words needed to hold ``rows`` bits."""
    if rows < 0:
        raise KernelError(f"rows must be >= 0, got {rows}")
    return -(-rows // WORD_BITS)


def pack_bit_columns(bits: np.ndarray) -> np.ndarray:
    """Pack an ``(R, C)`` 0/1 matrix into ``(ceil(R/64), C)`` uint64 words.

    Column ``c``'s bit ``r`` lands at bit ``63 - (r % 64)`` of word
    ``r // 64`` (MSB-first, mirroring the Region-1 row order), and tail
    bits past ``R`` in the last word are zero — the invariant
    :func:`first_divergence` relies on.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 2:
        raise KernelError(f"bit matrix must be 2-D, got shape {bits.shape}")
    rows, cols = bits.shape
    num_words = words_for(rows)
    if rows == 0:
        return np.zeros((0, cols), dtype=np.uint64)
    as_bytes = np.packbits(bits, axis=0, bitorder="big")
    padded = np.zeros((num_words * 8, cols), dtype=np.uint64)
    padded[: as_bytes.shape[0]] = as_bytes
    shifts = np.arange(7, -1, -1, dtype=np.uint64) * np.uint64(8)
    return np.bitwise_or.reduce(
        padded.reshape(num_words, 8, cols) << shifts[None, :, None], axis=1
    )


def available_implementations() -> tuple:
    """Implementations usable in this interpreter, preferred first."""
    return ("numba", "numpy") if HAVE_NUMBA else ("numpy",)


#: Engine names accepted by ``SIEVE_KERNEL`` (alongside the legacy
#: implementation spellings ``numpy``/``numba``, which pin the packed
#: kernel's implementation without forcing an engine).
KERNEL_NAMES = ("packed", "packed-numpy", "packed-numba", "vector")


def _forced() -> str:
    """Validated ``SIEVE_KERNEL`` value, or ``""`` when unset."""
    forced = os.environ.get(KERNEL_ENV_VAR, "").strip().lower()
    if forced and forced not in ("numpy", "numba") + KERNEL_NAMES:
        raise KernelError(
            f"{KERNEL_ENV_VAR}={forced!r} is not one of numpy/numba/"
            + "/".join(KERNEL_NAMES)
        )
    if forced in ("numba", "packed-numba") and not HAVE_NUMBA:
        raise KernelError(
            f"{KERNEL_ENV_VAR}={forced} but numba is not installed "
            "(pip install .[compiled])"
        )
    return forced


def default_implementation() -> str:
    """Active implementation: ``SIEVE_KERNEL`` override, else the best
    available (numba when the ``[compiled]`` extra is installed)."""
    forced = _forced()
    if forced in ("numpy", "numba"):
        return forced
    if forced.startswith("packed-"):
        return forced.partition("-")[2]
    return available_implementations()[0]


def default_kernel() -> str:
    """Active *engine* selection for batched device matching.

    ``SIEVE_KERNEL`` may name a full engine (``packed`` /
    ``packed-numpy`` / ``packed-numba`` / ``vector``), forcing every
    auto-path :meth:`~repro.sieve.device.SieveDevice.query` call onto
    it — the CI matrix legs use this so kernel-selection bugs cannot
    hide behind the default.  The legacy spellings ``numpy``/``numba``
    pin only the packed implementation and leave the engine at
    ``packed``; unset means ``packed``.
    """
    forced = _forced()
    if forced in KERNEL_NAMES:
        return forced
    return "packed"


def segment_divergence(
    xor: np.ndarray, rows: int, seg_starts: np.ndarray
) -> np.ndarray:
    """Max first-divergence per reference segment, single-word fast path.

    For layouts whose ``rows`` fit one packed word (``words_for(rows)
    == 1`` — every ``k <= 32``), ``bit_length`` is monotone in the XOR
    word, so the *maximum* first-divergence over a column range equals
    ``64 - bit_length(min(xor))``: the whole per-segment reduction
    collapses to one ``np.minimum.reduceat`` over the raw XOR matrix,
    and the smear/popcount of :func:`bit_length64` only runs on the
    tiny per-segment result instead of the full divergence matrix.

    ``xor`` is the ``(N, R)`` query-word XOR reference-word matrix and
    ``seg_starts`` the ascending segment start offsets into the ``R``
    axis.  Returns ``(N, num_segments)`` int64: entry ``[n, s]`` is the
    max first-divergence of query ``n`` over segment ``s`` — ``rows``
    exactly when the segment holds a full match (tail bits past
    ``rows`` are zero on both sides of the XOR, so a nonzero word
    always diverges before ``rows``).
    """
    xor = np.asarray(xor, dtype=np.uint64)
    if xor.ndim != 2:
        raise KernelError(f"xor matrix must be 2-D, got shape {xor.shape}")
    if not 0 < rows <= WORD_BITS:
        raise KernelError(
            f"segment_divergence covers 1..{WORD_BITS} rows, got {rows}"
        )
    seg_min = np.minimum.reduceat(xor, seg_starts, axis=1)
    return np.where(
        seg_min == np.uint64(0),
        np.int64(rows),
        WORD_BITS - bit_length64(seg_min),
    )


def first_divergence(
    ref_words: np.ndarray,
    query_words: np.ndarray,
    rows: int,
    impl: Optional[str] = None,
) -> np.ndarray:
    """First-divergence row of every (query, reference-column) pair.

    ``ref_words`` is ``(W, R)`` and ``query_words`` ``(W, N)``, both
    packed by :func:`pack_bit_columns` over the same ``rows`` bit rows
    (``W == words_for(rows)``).  Returns an ``(N, R)`` int64 matrix
    where entry ``[n, r]`` is the first row at which column ``r``
    differs from query ``n`` — or ``rows`` when they agree on every row
    (a match).  ``impl`` forces ``"numpy"``/``"numba"``; the default
    follows :func:`default_implementation`.
    """
    ref_words = np.asarray(ref_words, dtype=np.uint64)
    query_words = np.asarray(query_words, dtype=np.uint64)
    if ref_words.ndim != 2 or query_words.ndim != 2:
        raise KernelError("packed word matrices must be 2-D")
    num_words = words_for(rows)
    if ref_words.shape[0] != num_words or query_words.shape[0] != num_words:
        raise KernelError(
            f"expected {num_words} words for {rows} rows, got "
            f"{ref_words.shape[0]} (ref) and {query_words.shape[0]} (query)"
        )
    chosen = impl if impl is not None else default_implementation()
    if chosen == "numba":
        if not HAVE_NUMBA:
            raise KernelError(
                "numba implementation requested but numba is not installed "
                "(pip install .[compiled])"
            )
        out = np.empty(
            (query_words.shape[1], ref_words.shape[1]), dtype=np.int64
        )
        _first_divergence_numba(
            np.ascontiguousarray(ref_words),
            np.ascontiguousarray(query_words),
            rows,
            out,
        )
        return out
    if chosen != "numpy":
        raise KernelError(f"unknown kernel implementation {chosen!r}")
    return _first_divergence_numpy(ref_words, query_words, rows)


def _first_divergence_numpy(
    ref_words: np.ndarray, query_words: np.ndarray, rows: int
) -> np.ndarray:
    num_words, num_refs = ref_words.shape
    num_queries = query_words.shape[1]
    div = np.full((num_queries, num_refs), rows, dtype=np.int64)
    # Later words first: where an earlier word also differs, its (lower)
    # divergence row overwrites on the next iteration.
    for w in range(num_words - 1, -1, -1):
        xor = query_words[w][:, None] ^ ref_words[w][None, :]
        nonzero = xor != 0
        if not nonzero.any():
            continue
        # MSB-first packing: the first divergent row is the leading set
        # bit, i.e. 64 - bit_length (the zero word is masked out below).
        bit = WORD_BITS - bit_length64(xor)
        div = np.where(nonzero, w * WORD_BITS + bit, div)
    return div


if HAVE_NUMBA:  # pragma: no cover - exercised only with [compiled]

    @_njit(cache=False)
    def _first_divergence_numba(ref_words, query_words, rows, out):
        num_words, num_refs = ref_words.shape
        num_queries = query_words.shape[1]
        for n in range(num_queries):
            for r in range(num_refs):
                d = rows
                for w in range(num_words):
                    x = query_words[w, n] ^ ref_words[w, r]
                    if x != np.uint64(0):
                        # 64 - bit_length(x) == leading zero count.
                        c = 64
                        while x != np.uint64(0):
                            x = x >> np.uint64(1)
                            c -= 1
                        d = w * WORD_BITS + c
                        break
                out[n, r] = d

else:

    def _first_divergence_numba(ref_words, query_words, rows, out):
        raise KernelError(
            "numba implementation requested but numba is not installed "
            "(pip install .[compiled])"
        )
