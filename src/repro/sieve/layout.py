"""Column-wise data layout of a Sieve subarray (paper Section IV-A, Fig 7e).

Each subarray stores one or more *layers*; a layer is the paper's
Figure 7(e) structure:

* **Region 1** — reference and query k-mers *transposed* onto bitlines:
  row ``r`` stores bit ``r`` (MSB-first) of every k-mer, so one
  single-row activation delivers bit ``r`` of thousands of candidates to
  the matchers at once.  Region 1 is subdivided into *pattern groups* of
  576 columns: 512 reference k-mers with a batch of 64 (distinct) query
  k-mers replicated in the middle of each group (columns 256-319), since
  a query bit can only reach 576 matchers over the shared bus within one
  DRAM row cycle.
* **Region 2** — per-reference payload *offsets*, row-major.
* **Region 3** — the payloads themselves (taxon labels), row-major.

A 2048-row physical subarray holds many such ~120-row layers; the
subarray controller selects the layer whose sorted k-mer range brackets
the query, and matching activates only that layer's pattern rows.
Multi-layer packing is what lets a multi-GB reference database actually
fit the device at high storage efficiency.

Patterns and payloads are co-located in the same subarray to avoid bank
contention (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Sequence, Tuple

import numpy as np

from ..genomics.encoding import BITS_PER_BASE, transpose_kmers

#: Pattern-group composition from the paper's example part: a query bit
#: reaches 576 matchers in one row cycle -> 512 references + 64 queries.
REFS_PER_GROUP = 512
QUERIES_PER_GROUP = 64
GROUP_WIDTH = REFS_PER_GROUP + QUERIES_PER_GROUP

#: Query columns sit in the middle of the group (Figure 7e: BL256-319).
QUERY_COL_START = 256

#: Region-2 offset entry width and Region-3 payload width, in bits.
OFFSET_BITS = 32
PAYLOAD_BITS = 32


class LayoutError(ValueError):
    """Raised when a layout does not fit its subarray."""


@dataclass(frozen=True)
class SubarrayLayout:
    """Geometry of one Sieve subarray for a given k.

    Parameters mirror the paper's defaults: 8192-bit rows, 2048-row
    physical subarrays, 576-column pattern groups.  ``layers`` defaults
    to 1; use :meth:`with_max_layers` for a fully packed subarray.
    """

    k: int
    row_bits: int = 8192
    rows_per_subarray: int = 2048
    refs_per_group: int = REFS_PER_GROUP
    queries_per_group: int = QUERIES_PER_GROUP
    layers: int = 1

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise LayoutError(f"k must be positive, got {self.k}")
        if self.refs_per_group <= 0 or self.queries_per_group <= 0:
            raise LayoutError("group composition must be positive")
        if self.layers <= 0:
            raise LayoutError(f"layers must be positive, got {self.layers}")
        if self.group_width > self.row_bits:
            raise LayoutError(
                f"pattern group ({self.group_width} cols) wider than row "
                f"({self.row_bits} bits)"
            )
        if self.layers * self.layer_rows > self.rows_per_subarray:
            raise LayoutError(
                f"{self.layers} layers x {self.layer_rows} rows exceed the "
                f"{self.rows_per_subarray}-row subarray"
            )

    # -- per-layer geometry ---------------------------------------------------

    @property
    def group_width(self) -> int:
        return self.refs_per_group + self.queries_per_group

    @property
    def num_groups(self) -> int:
        """Pattern groups per subarray row."""
        return self.row_bits // self.group_width

    @property
    def refs_per_layer(self) -> int:
        return self.num_groups * self.refs_per_group

    @property
    def kmer_rows(self) -> int:
        """Region-1 rows per layer: one per k-mer bit."""
        return BITS_PER_BASE * self.k

    @property
    def offsets_per_row(self) -> int:
        """Whole offset entries per row (entries never straddle rows)."""
        return self.row_bits // OFFSET_BITS

    @property
    def payloads_per_row(self) -> int:
        """Whole payload entries per row."""
        return self.row_bits // PAYLOAD_BITS

    @property
    def offset_rows(self) -> int:
        """Region-2 rows per layer: one 32-bit offset per reference."""
        return -(-self.refs_per_layer // self.offsets_per_row)

    @property
    def payload_rows(self) -> int:
        """Region-3 rows per layer: one 32-bit payload per reference."""
        return -(-self.refs_per_layer // self.payloads_per_row)

    @property
    def layer_rows(self) -> int:
        """Rows one complete layer occupies."""
        return self.kmer_rows + self.offset_rows + self.payload_rows

    @property
    def max_layers(self) -> int:
        """How many layers this subarray could hold."""
        return self.rows_per_subarray // self.layer_rows

    def with_max_layers(self) -> "SubarrayLayout":
        """This layout, packed to the subarray's full layer capacity."""
        return SubarrayLayout(
            k=self.k,
            row_bits=self.row_bits,
            rows_per_subarray=self.rows_per_subarray,
            refs_per_group=self.refs_per_group,
            queries_per_group=self.queries_per_group,
            layers=self.max_layers,
        )

    @property
    def refs_per_subarray(self) -> int:
        """Reference k-mers stored per subarray (all layers)."""
        return self.layers * self.refs_per_layer

    @property
    def storage_efficiency(self) -> float:
        """Fraction of subarray bits holding reference pattern data."""
        pattern_bits = self.refs_per_subarray * self.kmer_rows
        return pattern_bits / (self.rows_per_subarray * self.row_bits)

    # -- row addressing --------------------------------------------------------

    def _check_layer(self, layer: int) -> None:
        if not 0 <= layer < self.layers:
            raise LayoutError(f"layer {layer} out of range [0, {self.layers})")

    def layer_base_row(self, layer: int) -> int:
        """First subarray row of ``layer``."""
        self._check_layer(layer)
        return layer * self.layer_rows

    def pattern_row(self, layer: int, bit: int) -> int:
        """Subarray row holding k-mer bit ``bit`` of ``layer``."""
        if not 0 <= bit < self.kmer_rows:
            raise LayoutError(f"bit {bit} out of range [0, {self.kmer_rows})")
        return self.layer_base_row(layer) + bit

    def region_of_row(self, row: int) -> str:
        """Region of a subarray row: pattern/offset/payload/unused."""
        if not 0 <= row < self.rows_per_subarray:
            raise LayoutError(f"row {row} out of range [0, {self.rows_per_subarray})")
        if row >= self.layers * self.layer_rows:
            return "unused"
        local = row % self.layer_rows
        if local < self.kmer_rows:
            return "pattern"
        if local < self.kmer_rows + self.offset_rows:
            return "offset"
        return "payload"

    # -- column addressing -------------------------------------------------------

    @property
    def query_col_offset(self) -> int:
        """Column offset of the query block inside a group."""
        return min(QUERY_COL_START, self.refs_per_group)

    def group_base(self, group: int) -> int:
        """First column of pattern group ``group``."""
        self._check_group(group)
        return group * self.group_width

    def _check_group(self, group: int) -> None:
        if not 0 <= group < self.num_groups:
            raise LayoutError(f"group {group} out of range [0, {self.num_groups})")

    def query_columns(self, group: int) -> range:
        """Columns holding the replicated query batch in ``group``."""
        base = self.group_base(group) + self.query_col_offset
        return range(base, base + self.queries_per_group)

    # -- cached column maps ---------------------------------------------------
    #
    # The maps below are pure functions of the (frozen) layout, but the
    # matching loops consult them per query slot: computed on the fly they
    # dominate the functional simulator's profile.  They are built once on
    # first use; ``cached_property`` stores into ``__dict__`` directly, which
    # the frozen dataclass permits and which ``__eq__``/``__hash__`` (field
    # based) never see.

    @cached_property
    def ref_slot_columns(self) -> np.ndarray:
        """Column of every layer-wide reference slot, as an int array.

        ``ref_slot_columns[slot]`` is the bitline holding reference slot
        ``slot``; slot order is ascending column order skipping the query
        block, so slot order equals sorted order.
        """
        within = np.arange(self.group_width)
        qstart = self.query_col_offset
        ref_within = within[
            (within < qstart) | (within >= qstart + self.queries_per_group)
        ]
        group_bases = np.arange(self.num_groups) * self.group_width
        cols = (group_bases[:, None] + ref_within[None, :]).ravel()
        cols.flags.writeable = False
        return cols

    @cached_property
    def query_column_matrix(self) -> np.ndarray:
        """``(num_groups, queries_per_group)`` matrix of query columns.

        Row ``g`` lists the columns of group ``g``'s replicated query
        batch, in batch-slot order.
        """
        group_bases = np.arange(self.num_groups) * self.group_width
        slots = self.query_col_offset + np.arange(self.queries_per_group)
        cols = group_bases[:, None] + slots[None, :]
        cols.flags.writeable = False
        return cols

    @cached_property
    def column_group_index(self) -> np.ndarray:
        """Pattern group of every reference slot's column (by slot index)."""
        groups = self.ref_slot_columns // self.group_width
        groups.flags.writeable = False
        return groups

    def match_enable_mask(self, count: int) -> np.ndarray:
        """Match-Enable mask for the first ``count`` occupied ref slots."""
        if not 0 <= count <= self.refs_per_layer:
            raise LayoutError(
                f"slot count {count} out of range [0, {self.refs_per_layer}]"
            )
        enable = np.zeros(self.row_bits, dtype=np.uint8)
        enable[self.ref_slot_columns[:count]] = 1
        return enable

    def ref_columns(self, group: int) -> List[int]:
        """Columns holding reference k-mers in ``group``, in slot order.

        Slot order is ascending column order skipping the query block —
        references are loaded sorted, so slot order equals sorted order.
        """
        self._check_group(group)
        start = group * self.refs_per_group
        return self.ref_slot_columns[start : start + self.refs_per_group].tolist()

    def ref_slot_to_column(self, slot: int) -> int:
        """Map a layer-wide reference slot index to its column."""
        if not 0 <= slot < self.refs_per_layer:
            raise LayoutError(
                f"ref slot {slot} out of range [0, {self.refs_per_layer})"
            )
        return int(self.ref_slot_columns[slot])

    def column_to_ref_slot(self, column: int) -> int:
        """Map a hit column back to its layer-wide reference slot.

        Raises for query-block and unused trailing columns.
        """
        if not 0 <= column < self.row_bits:
            raise LayoutError(f"column {column} out of range [0, {self.row_bits})")
        group = column // self.group_width
        if group >= self.num_groups:
            raise LayoutError(f"column {column} is in the unused row tail")
        local = column - self.group_base(group)
        qstart = self.query_col_offset
        if qstart <= local < qstart + self.queries_per_group:
            raise LayoutError(f"column {column} holds a query, not a reference")
        if local > qstart:
            local -= self.queries_per_group
        return group * self.refs_per_group + local

    # -- bit images ----------------------------------------------------------------

    def ref_bit_matrix(self, kmers: Sequence[int]) -> np.ndarray:
        """Region-1 image for one layer's references: (2k, row_bits) bits.

        ``kmers`` fill reference slots in order; query columns and unused
        slots stay zero.  This is the "transpose a conventional database"
        API of Section IV-C.
        """
        if len(kmers) > self.refs_per_layer:
            raise LayoutError(
                f"{len(kmers)} k-mers exceed layer capacity {self.refs_per_layer}"
            )
        matrix = np.zeros((self.kmer_rows, self.row_bits), dtype=np.uint8)
        if len(kmers):
            bits = transpose_kmers(kmers, self.k)
            matrix[:, self.ref_slot_columns[: len(kmers)]] = bits
        return matrix

    def query_bit_matrix(self, queries: Sequence[int]) -> np.ndarray:
        """Region-1 write image for a query batch: (2k, row_bits), with the
        batch replicated into every group's query block.

        Shorter batches leave the remaining query columns zero (those
        slots are disabled at match time).
        """
        if len(queries) > self.queries_per_group:
            raise LayoutError(
                f"batch of {len(queries)} exceeds {self.queries_per_group} "
                f"queries per group"
            )
        matrix = np.zeros((self.kmer_rows, self.row_bits), dtype=np.uint8)
        if len(queries):
            bits = transpose_kmers(queries, self.k)
            cols = self.query_column_matrix[:, : len(queries)]
            matrix[:, cols.ravel()] = np.tile(bits, (1, self.num_groups))
        return matrix

    # -- regions 2 and 3 -----------------------------------------------------------

    def offset_location(self, layer: int, slot: int) -> Tuple[int, int]:
        """(row, col_start) of the Region-2 offset entry for a ref slot."""
        if not 0 <= slot < self.refs_per_layer:
            raise LayoutError(f"ref slot {slot} out of range")
        row_in_region, entry = divmod(slot, self.offsets_per_row)
        row = self.layer_base_row(layer) + self.kmer_rows + row_in_region
        return row, entry * OFFSET_BITS

    def payload_location(self, layer: int, payload_index: int) -> Tuple[int, int]:
        """(row, col_start) of a Region-3 payload entry."""
        if not 0 <= payload_index < self.refs_per_layer:
            raise LayoutError(
                f"payload index {payload_index} out of range "
                f"[0, {self.refs_per_layer})"
            )
        row_in_region, entry = divmod(payload_index, self.payloads_per_row)
        row = (
            self.layer_base_row(layer)
            + self.kmer_rows
            + self.offset_rows
            + row_in_region
        )
        return row, entry * PAYLOAD_BITS

    # -- host-side cost hooks ----------------------------------------------------------

    @property
    def batch_write_commands(self) -> int:
        """Write commands to replace one query batch (paper Section IV-A):

        ``(# pattern groups / subarray) x (k x 2)`` — each command writes
        one prefetch-width chunk (64 bits) of one row of one group.
        """
        return self.num_groups * self.kmer_rows
