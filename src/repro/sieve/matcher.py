"""Bit-serial matcher array (paper Figure 7d).

One matcher sits behind every sense amplifier of an enhanced row buffer:
an XNOR gate compares the reference bit on the bitline with the query
bit broadcast on the group's shared bus, an AND gate folds the result
into a 1-bit latch, and a Match-Enable signal lets individual matchers
be bypassed (query columns, empty slots).

The latch semantics are *running exact-match*: the latch holds 1 iff the
reference has matched the query on every bit compared so far.  Latches
are preset to 1 before a new query starts.
"""

from __future__ import annotations

import numpy as np


class MatcherError(ValueError):
    """Raised on shape or protocol errors in the matcher array."""


class MatcherArray:
    """A row-buffer-wide array of XNOR/AND/latch matchers."""

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise MatcherError(f"width must be positive, got {width}")
        self.width = width
        self._latches = np.ones(width, dtype=np.uint8)
        #: Matchers with enable=0 are bypassed and their latch is pinned 0
        #: so they can never be reported as matches.
        self._enable = np.ones(width, dtype=np.uint8)
        self.compare_count = 0

    @property
    def latches(self) -> np.ndarray:
        """Read-only view of the latch bits."""
        view = self._latches.view()
        view.flags.writeable = False
        return view

    def set_enable(self, enable: np.ndarray) -> None:
        """Install the Match-Enable mask (1 = participate, 0 = bypass)."""
        enable = np.asarray(enable, dtype=np.uint8)
        if enable.shape != (self.width,):
            raise MatcherError(
                f"enable mask must have shape ({self.width},), got {enable.shape}"
            )
        self._enable = enable % 2

    def reset(self) -> None:
        """Preset all enabled latches to 1 (start of a new query)."""
        self._latches = self._enable.copy()
        self.compare_count = 0

    def compare(self, ref_bits: np.ndarray, query_bit: int) -> None:
        """One row cycle: fold XNOR(ref, query) into every enabled latch.

        ``ref_bits`` is the activated row (one bit per column);
        ``query_bit`` is the bit broadcast on the shared bus this cycle.
        """
        if query_bit not in (0, 1):
            raise MatcherError(f"query bit must be 0/1, got {query_bit!r}")
        ref_bits = np.asarray(ref_bits, dtype=np.uint8)
        if ref_bits.shape != (self.width,):
            raise MatcherError(
                f"row must have shape ({self.width},), got {ref_bits.shape}"
            )
        xnor = np.uint8(1) - ((ref_bits ^ np.uint8(query_bit)) & np.uint8(1))
        self._latches &= xnor & self._enable
        self.compare_count += 1

    def compare_per_column(self, ref_bits: np.ndarray, query_bits: np.ndarray) -> None:
        """Grouped variant: per-column query bits (one bus per group).

        Used by the subarray simulator, where each pattern group
        broadcasts its own copy of the selected query's bit.
        """
        ref_bits = np.asarray(ref_bits, dtype=np.uint8)
        query_bits = np.asarray(query_bits, dtype=np.uint8)
        if ref_bits.shape != (self.width,) or query_bits.shape != (self.width,):
            raise MatcherError("row and query vectors must both span the array")
        xnor = np.uint8(1) - ((ref_bits ^ query_bits) & np.uint8(1))
        self._latches &= xnor & self._enable
        self.compare_count += 1

    def load_state(self, latches: np.ndarray, compare_count: int) -> None:
        """Install latch contents computed by the batched fast path.

        The vectorized matcher evaluates all row cycles of a query in one
        pass; this restores the exact state a cycle-by-cycle replay would
        have left behind.
        """
        latches = np.asarray(latches, dtype=np.uint8)
        if latches.shape != (self.width,):
            raise MatcherError(
                f"latch row must have shape ({self.width},), got {latches.shape}"
            )
        if compare_count < 0:
            raise MatcherError(f"compare_count must be >= 0, got {compare_count}")
        self._latches = latches.copy()
        self.compare_count = compare_count

    def any_match(self) -> bool:
        """True while at least one candidate is still alive."""
        return bool(self._latches.any())

    def match_columns(self) -> np.ndarray:
        """Columns whose latch still holds 1."""
        return np.flatnonzero(self._latches)
