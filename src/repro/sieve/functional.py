"""Bit-accurate functional simulator of one Sieve subarray (Type-2/3).

This model executes the paper's k-mer matching walkthrough
(Section IV-A) literally, on top of the behavioral DRAM array:

1. reference k-mers are transposed onto bitlines (Region 1 of each
   layer), offsets and payloads installed row-major in Regions 2/3;
2. a query batch is written into the query columns of every pattern
   group of the destination layer;
3. per query, that layer's Region-1 rows are activated one at a time;
   matchers fold XNOR results into their latches; the ETM steps once per
   row cycle and interrupts activation (one row late — the interrupt
   races the next ACT) once every candidate has died;
4. on a hit, the ETM pipeline flushes, the Column Finder locates the hit
   column, and the offset + payload are fetched with two more row
   activations.

Everything the trace-driven performance model needs (rows activated,
flush cycles, CF cycles, write commands) falls out of this simulation,
and the test suite checks the outcomes against a plain
:class:`~repro.genomics.database.KmerDatabase`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dram.subarray import Subarray
from . import kernels
from .column_finder import ColumnFinder, ColumnFindResult
from .etm import EtmPipeline
from .layout import OFFSET_BITS, PAYLOAD_BITS, LayoutError, SubarrayLayout
from .matcher import MatcherArray

#: Engines accepted by :meth:`SieveSubarraySim.match_all`: the packed
#: uint64 kernel (optionally pinned to one implementation) or the PR-2
#: per-query vectorized path kept as the reference fast path.
MATCH_KERNELS = ("packed", "packed-numpy", "packed-numba", "vector")


class FunctionalError(RuntimeError):
    """Raised on protocol errors in the functional simulator."""


@dataclass(frozen=True)
class MatchOutcome:
    """Result of matching one query k-mer in one subarray."""

    query: int
    hit: bool
    payload: Optional[int]
    column: Optional[int]
    layer: int
    rows_activated: int
    etm_flush_cycles: int
    cf: Optional[ColumnFindResult]
    etm_terminated_early: bool


def _int_to_bits(value: int, width: int) -> np.ndarray:
    """MSB-first bit vector of ``value`` (vectorized via unpackbits)."""
    if value < 0 or value >= (1 << width):
        raise FunctionalError(f"value {value} does not fit in {width} bits")
    num_bytes = -(-width // 8)
    raw = np.frombuffer(value.to_bytes(num_bytes, "big"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="big")[8 * num_bytes - width :]


def _bits_to_int(bits: np.ndarray) -> int:
    """Integer from an MSB-first bit vector (vectorized via packbits)."""
    bits = np.asarray(bits, dtype=np.uint8)
    pad = (-bits.size) % 8
    if pad:
        bits = np.concatenate([np.zeros(pad, dtype=np.uint8), bits])
    return int.from_bytes(np.packbits(bits, bitorder="big").tobytes(), "big")


def _bit_rows_to_ints(bits: np.ndarray) -> np.ndarray:
    """Row-wise :func:`_bits_to_int` over an ``(N, width)`` bit matrix.

    ``width`` must be a multiple of 8 (Region-2/3 entries are 32 bits).
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.shape[1] % 8:
        raise FunctionalError(
            f"row width must be a multiple of 8, got {bits.shape[1]}"
        )
    packed = np.packbits(bits, axis=1, bitorder="big").astype(np.int64)
    values = np.zeros(bits.shape[0], dtype=np.int64)
    for byte in range(packed.shape[1]):
        values = (values << 8) | packed[:, byte]
    return values


class SieveSubarraySim:
    """One Sieve-enhanced subarray, loaded with sorted reference records.

    Records fill layers in sorted order; the subarray controller keeps
    each layer's first k-mer so it can select the destination layer for
    a routed query (the host index is subarray-granular).
    """

    def __init__(
        self,
        layout: SubarrayLayout,
        records: Sequence[Tuple[int, int]],
        etm_enabled: bool = True,
    ) -> None:
        if len(records) > layout.refs_per_subarray:
            raise LayoutError(
                f"{len(records)} records exceed capacity {layout.refs_per_subarray}"
            )
        for (a, _), (b, _) in zip(records, records[1:]):
            if b <= a:
                raise FunctionalError("records must be sorted by k-mer, unique")
        self.layout = layout
        self.etm_enabled = etm_enabled
        self.records = list(records)
        self.array = Subarray(layout.rows_per_subarray, layout.row_bits)
        self.matchers = MatcherArray(layout.row_bits)
        self.etm = EtmPipeline(layout.row_bits)
        self.finder = ColumnFinder(self.etm)
        self._batch: List[int] = []
        self._batch_layer = 0
        self.batch_loads = 0
        self.write_commands = 0
        #: Match-Enable masks keyed by (layer, record count); rebuilt when
        #: references are (re)loaded.
        self._enable_cache: Dict[Tuple[int, int], np.ndarray] = {}
        #: Packed Region-1 reference words per layer (uint64, MSB-first)
        #: plus group/segment boundary arrays, built lazily from the
        #: stored cells — so load-time fault corruption is packed in —
        #: and invalidated with the enable cache when references are
        #: (re)loaded.  Query columns are re-packed per batch (they
        #: change on every load).
        self._ref_words_cache: Dict[
            int, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        # Layer occupancy and first-kmer table (subarray controller state).
        per_layer = layout.refs_per_layer
        self._layer_records: List[List[Tuple[int, int]]] = [
            self.records[i : i + per_layer]
            for i in range(0, len(self.records), per_layer)
        ]
        self._layer_firsts = [chunk[0][0] for chunk in self._layer_records]
        self._load_references()

    @property
    def num_layers_used(self) -> int:
        return len(self._layer_records)

    # -- load paths ---------------------------------------------------------

    def _load_references(self) -> None:
        layout = self.layout
        self._enable_cache.clear()
        self._ref_words_cache.clear()
        for layer, chunk in enumerate(self._layer_records):
            kmers = [k for k, _ in chunk]
            ref_matrix = layout.ref_bit_matrix(kmers)
            base = layout.layer_base_row(layer)
            for bit in range(layout.kmer_rows):
                self.array.load_row(base + bit, ref_matrix[bit])
            # Region 2: offset of each slot's payload (identity mapping
            # here, but fetched through the array like the real device).
            for slot in range(len(chunk)):
                row, col = layout.offset_location(layer, slot)
                self.array.load_bits(row, col, _int_to_bits(slot, OFFSET_BITS))
            # Region 3: payloads.
            for slot, (_, payload) in enumerate(chunk):
                row, col = layout.payload_location(layer, slot)
                self.array.load_bits(row, col, _int_to_bits(payload, PAYLOAD_BITS))

    def route_layer(self, kmer: int) -> int:
        """Layer whose sorted range should contain ``kmer``."""
        pos = bisect.bisect_right(self._layer_firsts, kmer) - 1
        return max(pos, 0)

    def load_query_batch(self, queries: Sequence[int], layer: int = 0) -> int:
        """Write a batch into every group's query block of ``layer``;
        returns the number of prefetch-width write commands charged
        (Section IV-A: groups x 2k)."""
        if not queries:
            raise FunctionalError("query batch must be non-empty")
        if not 0 <= layer < self.num_layers_used:
            raise FunctionalError(
                f"layer {layer} out of range [0, {self.num_layers_used})"
            )
        layout = self.layout
        matrix = layout.query_bit_matrix(list(queries))
        base = layout.layer_base_row(layer)
        col_ranges = [layout.query_columns(g) for g in range(layout.num_groups)]
        for bit in range(layout.kmer_rows):
            for cols in col_ranges:
                self.array.load_bits(
                    base + bit, cols.start, matrix[bit, cols.start : cols.stop]
                )
        self._batch = list(queries)
        self._batch_layer = layer
        self.batch_loads += 1
        commands = layout.batch_write_commands
        self.write_commands += commands
        return commands

    def _layer_enable(self, layer: int) -> np.ndarray:
        """Match-Enable mask: only occupied reference columns of a layer.

        The mask is a pure function of (layer, record count), so it is
        cached and only rebuilt when the layer's references change
        (:meth:`_load_references` invalidates the cache).
        """
        key = (layer, len(self._layer_records[layer]))
        mask = self._enable_cache.get(key)
        if mask is None:
            mask = self.layout.match_enable_mask(key[1])
            # Frozen on entry: the cached mask is shared by every later
            # match (and by forked fleet workers), so no caller may
            # mutate it in place.
            mask.setflags(write=False)
            self._enable_cache[key] = mask
        return mask

    # -- matching ------------------------------------------------------------

    def match_slot(self, batch_slot: int) -> MatchOutcome:
        """Match one query of the loaded batch against the batch's layer."""
        if not 0 <= batch_slot < len(self._batch):
            raise FunctionalError(
                f"batch slot {batch_slot} out of range [0, {len(self._batch)})"
            )
        layout = self.layout
        layer = self._batch_layer
        query = self._batch[batch_slot]
        self.matchers.set_enable(self._layer_enable(layer))
        self.matchers.reset()
        self.etm.reset()
        rows_activated = 0
        terminated_early = False
        total_rows = layout.kmer_rows
        base = layout.layer_base_row(layer)
        bit = 0
        while bit < total_rows:
            bits = self.array.activate(base + bit)
            qvec = self._query_vector(bits, batch_slot)
            self.matchers.compare_per_column(bits, qvec)
            self.array.precharge()
            rows_activated += 1
            self.etm.step(self.matchers.latches)
            if self.etm_enabled and self.etm.terminated and bit < total_rows - 1:
                # The interrupt races the already-issued next activation:
                # one more row opens before activation stops.
                self.array.activate(base + bit + 1)
                self.array.precharge()
                rows_activated += 1
                terminated_early = True
                break
            bit += 1
        if self.matchers.any_match():
            return self._retrieve(query, layer, rows_activated)
        return MatchOutcome(
            query=query,
            hit=False,
            payload=None,
            column=None,
            layer=layer,
            rows_activated=rows_activated,
            etm_flush_cycles=0,
            cf=None,
            etm_terminated_early=terminated_early,
        )

    def match_query(self, query: int) -> MatchOutcome:
        """Convenience: route, load a single-query batch, match it."""
        layer = self.route_layer(query)
        self.load_query_batch([query], layer)
        return self.match_slot(0)

    def _query_vector(self, row_bits: np.ndarray, batch_slot: int) -> np.ndarray:
        """Per-column query bit: each group broadcasts its own replica of
        the selected query's current bit on its shared bus."""
        layout = self.layout
        qvec = np.zeros(layout.row_bits, dtype=np.uint8)
        for g in range(layout.num_groups):
            qcol = layout.query_columns(g)[batch_slot]
            base = layout.group_base(g)
            qvec[base : base + layout.group_width] = row_bits[qcol]
        return qvec

    def _retrieve(self, query: int, layer: int, rows_activated: int) -> MatchOutcome:
        """Hit path: ETM flush, Column Finder, offset + payload fetch."""
        flush = self.etm.flush_cycles_after_last_row()
        # strict=False: the shifter takes the first live latch; duplicate
        # latches only arise under fault injection.
        cf = self.finder.find(np.asarray(self.matchers.latches), strict=False)
        payload = self._fetch_record(layer, cf)
        return MatchOutcome(
            query=query,
            hit=True,
            payload=payload,
            column=cf.column,
            layer=layer,
            rows_activated=rows_activated + 2,
            etm_flush_cycles=flush,
            cf=cf,
            etm_terminated_early=False,
        )

    def _fetch_record(self, layer: int, cf: ColumnFindResult) -> int:
        """Region-2/3 fetch for a located hit column; returns the payload."""
        layout = self.layout
        slot = layout.column_to_ref_slot(cf.column)
        # Region 2: fetch the payload offset.
        orow, ocol = layout.offset_location(layer, slot)
        bits = self.array.activate(orow)
        offset = _bits_to_int(bits[ocol : ocol + OFFSET_BITS])
        self.array.precharge()
        return self._fetch_payload(layer, offset)

    def _fetch_payload(self, layer: int, offset: int) -> int:
        layout = self.layout
        # The payload decoder wraps: with pristine cells the offset is
        # always in range, but a fault-corrupted Region-2 word must still
        # address *some* Region-3 slot rather than fall off the layer.
        offset %= layout.refs_per_layer
        # Region 3: fetch the payload at that offset.
        prow, pcol = layout.payload_location(layer, offset)
        bits = self.array.activate(prow)
        payload = _bits_to_int(bits[pcol : pcol + PAYLOAD_BITS])
        self.array.precharge()
        return payload

    # -- batched matching -----------------------------------------------------

    def match_batch(
        self, slots: Optional[Sequence[int]] = None
    ) -> List[MatchOutcome]:
        """Deprecated name for :meth:`match_all` (PR-4 API unification)."""
        from ..api import warn_deprecated

        warn_deprecated(
            "SieveSubarraySim.match_batch()", "SieveSubarraySim.match_all()"
        )
        return self.match_all(slots)

    def match_all(
        self,
        slots: Optional[Sequence[int]] = None,
        kernel: str = "packed",
    ) -> List[MatchOutcome]:
        """Match loaded batch slots in one vectorized pass.

        Fast path equivalent to ``[self.match_slot(s) for s in slots]``:
        instead of replaying row activations one Python-level DRAM command
        at a time, it computes every query's per-column *first-divergence*
        row analytically.  Everything observable is synthesized to match
        the scalar path bit for bit:

        * :class:`MatchOutcome` fields, including ``rows_activated``
          under the ETM's one-row-late interrupt semantics and the SR
          drain (``etm_flush_cycles``) from the closed-form SR recurrence;
        * :class:`~repro.dram.subarray.SubarrayStats` counters (ACT/PRE
          pairs charged analytically);
        * matcher / ETM pipeline state after the final query.

        ``kernel`` selects the engine:

        * ``"packed"`` (default) — the :mod:`repro.sieve.kernels`
          uint64-word path: Region-1 columns and query replicas are
          bit-packed and the whole batch's first-divergence matrix falls
          out of one XOR + leading-bit pass (``"packed-numpy"`` /
          ``"packed-numba"`` pin the implementation and force the
          general per-group sweep instead of the single-word
          ``segment_divergence`` fast path);
        * ``"vector"`` — the PR-2 per-query uint8 comparison, retained
          as the reference fast path the bit-identity suites compare
          the packed kernel (and the scalar path) against.
        """
        if slots is None:
            slots = range(len(self._batch))
        if kernel != "vector":
            if kernel not in MATCH_KERNELS:
                raise FunctionalError(
                    f"unknown match kernel {kernel!r}; expected one of "
                    f"{MATCH_KERNELS}"
                )
            _, _, impl = kernel.partition("-")
            return self._match_all_packed(list(slots), impl or None)
        layout = self.layout
        layer = self._batch_layer
        records = self._layer_records[layer]
        enable = self._layer_enable(layer)
        num_refs = len(records)
        total_rows = layout.kmer_rows
        base = layout.layer_base_row(layer)
        region1 = self.array.peek_rows(base, base + total_rows)
        enable_cols = layout.ref_slot_columns[:num_refs]
        group_of_slot = layout.column_group_index[:num_refs]
        segment_of_slot = enable_cols // self.etm.segment_size
        ref_bits = region1[:, enable_cols]
        self.matchers.set_enable(enable)
        outcomes: List[MatchOutcome] = []
        for batch_slot in slots:
            if not 0 <= batch_slot < len(self._batch):
                raise FunctionalError(
                    f"batch slot {batch_slot} out of range "
                    f"[0, {len(self._batch)})"
                )
            query = self._batch[batch_slot]
            # Per-group query replicas, broadcast to each slot's group.
            replicas = region1[:, layout.query_column_matrix[:, batch_slot]]
            query_bits = replicas[:, group_of_slot]
            diverged = ref_bits != query_bits
            has_diff = diverged.any(axis=0)
            first_div = np.where(
                has_diff, diverged.argmax(axis=0), total_rows
            ).astype(np.int64)
            # Per-segment survival horizon: segment g's OR is live after
            # row cycle t iff seg_max[g] >= t.
            seg_max = np.full(self.etm.num_segments, -1, dtype=np.int64)
            np.maximum.at(seg_max, segment_of_slot, first_div)
            hit_mask = ~has_diff
            if hit_mask.any():
                outcomes.append(
                    self._batch_hit(
                        query, layer, enable_cols[hit_mask], seg_max, total_rows
                    )
                )
            else:
                outcomes.append(
                    self._batch_miss(query, layer, int(first_div.max()), seg_max)
                )
        return outcomes

    def _packed_layer(
        self, layer: int, region1: np.ndarray, enable_cols: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Layer's packed reference words + group/segment boundaries.

        Returns ``(ref_words, group_bounds, seg_ids, seg_starts)``:
        the occupied Region-1 columns as uint64 words (packed from the
        stored cells, so load-time fault corruption is included), the
        per-group slot boundaries, and the reduceat boundaries of the
        occupied ETM segments.  All pure functions of the loaded
        references, cached until :meth:`_load_references` invalidates.
        """
        cached = self._ref_words_cache.get(layer)
        if cached is None:
            words = kernels.pack_bit_columns(region1[:, enable_cols])
            group_bounds = np.searchsorted(
                self.layout.column_group_index[: enable_cols.size],
                np.arange(self.layout.num_groups + 1),
            )
            seg_ids, seg_starts = np.unique(
                enable_cols // self.etm.segment_size, return_index=True
            )
            # Frozen on entry: shared by every later match and by forked
            # fleet workers, so no caller may mutate them in place.
            for array in (words, group_bounds, seg_ids, seg_starts):
                array.setflags(write=False)
            cached = (words, group_bounds, seg_ids, seg_starts)
            self._ref_words_cache[layer] = cached
        return cached

    def _match_all_packed(
        self, slots: List[int], impl: Optional[str]
    ) -> List[MatchOutcome]:
        """Packed-word engine behind :meth:`match_all`.

        One :func:`repro.sieve.kernels.first_divergence` call per pattern
        group yields the whole batch's first-divergence matrix; hits,
        misses, ETM horizons, SR drains and Region-2/3 fetches are then
        synthesized batch-wide with the same closed forms the PR-2 path
        applies per query.  Bit-identity with the scalar and PR-2 paths
        is property-test enforced (tests/test_kernels_properties.py).
        """
        layout = self.layout
        layer = self._batch_layer
        for batch_slot in slots:
            if not 0 <= batch_slot < len(self._batch):
                raise FunctionalError(
                    f"batch slot {batch_slot} out of range "
                    f"[0, {len(self._batch)})"
                )
        self.matchers.set_enable(self._layer_enable(layer))
        if not slots:
            return []
        num_refs = len(self._layer_records[layer])
        total_rows = layout.kmer_rows
        base = layout.layer_base_row(layer)
        num_queries = len(slots)
        region1 = self.array.peek_rows(base, base + total_rows)
        enable_cols = layout.ref_slot_columns[:num_refs]
        slot_arr = np.asarray(slots, dtype=np.intp)

        # Pack: reference words once per layer, query replicas per batch
        # (each group broadcasts its own — possibly fault-corrupted —
        # replica, so replicas are packed per group, not per query).
        ref_words, group_bounds, seg_ids, seg_starts = self._packed_layer(
            layer, region1, enable_cols
        )
        qcols = layout.query_column_matrix
        num_words = kernels.words_for(total_rows)
        qwords = kernels.pack_bit_columns(region1[:, qcols.ravel()]).reshape(
            num_words, layout.num_groups, layout.queries_per_group
        )
        chosen = impl if impl is not None else kernels.default_implementation()
        seg_max = np.full(
            (num_queries, self.etm.num_segments), -1, dtype=np.int64
        )
        # Auto mode takes the single-word fast path; a pinned impl
        # ("packed-numpy"/"packed-numba") runs the general per-group
        # first_divergence sweep so both engines stay test-reachable.
        if impl is None and num_words == 1 and chosen == "numpy":
            # Single-word fast path (every k <= 32 packs into one
            # uint64 word): kernels.segment_divergence reduces the raw
            # XOR matrix per segment without materializing the full
            # per-column divergence matrix; argmin locates the first
            # all-equal column (XOR == 0) for hit queries.
            zero = np.uint64(0)
            group_of_col = layout.column_group_index[:num_refs]
            # (query, column) orientation keeps the argmin/reduceat
            # scans contiguous.
            xor = qwords[0].T[:, group_of_col] ^ ref_words[0][None, :]
            if not (
                num_queries == layout.queries_per_group
                and np.array_equal(slot_arr, np.arange(num_queries))
            ):
                xor = xor[slot_arr]
            first_hit = np.argmin(xor, axis=1)
            seg_div = kernels.segment_divergence(xor, total_rows, seg_starts)
            seg_max[:, seg_ids] = seg_div
            last_div = seg_div.max(axis=1)
            # Tail bits past total_rows are zero on both sides, so a
            # nonzero XOR always diverges before total_rows: max
            # divergence reaches total_rows iff some column matched.
            any_hit = last_div == total_rows
            last_hits = xor[num_queries - 1] == zero
        else:
            div = np.empty((num_queries, num_refs), dtype=np.int64)
            for g in range(layout.num_groups):
                lo, hi = int(group_bounds[g]), int(group_bounds[g + 1])
                if lo == hi:
                    continue
                div[:, lo:hi] = kernels.first_divergence(
                    ref_words[:, lo:hi],
                    qwords[:, g, slot_arr],
                    total_rows,
                    chosen,
                )
            hit_matrix = div == total_rows
            any_hit = hit_matrix.any(axis=1)
            first_hit = hit_matrix.argmax(axis=1)
            last_div = div.max(axis=1)
            seg_max[:, seg_ids] = np.maximum.reduceat(div, seg_starts, axis=1)
            last_hits = hit_matrix[num_queries - 1]

        # Batch-wide outcome synthesis (same closed forms as the PR-2
        # path, applied to all queries at once).
        if self.etm_enabled:
            early = ~any_hit & (last_div <= total_rows - 2)
        else:
            early = np.zeros(num_queries, dtype=bool)
        compares = np.where(
            any_hit | ~early, total_rows, last_div + 1
        )
        rows_act = np.where(early, last_div + 2, total_rows)
        self.array.charge_untimed_accesses(int(rows_act.sum()))

        # SR drain after the final row (hits consult it): SR[i] is live
        # iff i >= steps or max_{g<=i}(seg_max[g] - g) >= steps - i —
        # the same recurrence _sr_after unrolls, vectorized over queries.
        seg_idx = np.arange(self.etm.num_segments, dtype=np.int64)
        prefix = np.maximum.accumulate(seg_max - seg_idx[None, :], axis=1)
        live = (prefix >= total_rows - seg_idx[None, :]) | (
            seg_idx[None, :] >= total_rows
        )
        flush_all = np.where(
            live.any(axis=1),
            self.etm.num_segments - live.argmax(axis=1),
            0,
        )

        # Region-2/3 fetches for every hit, batch-wide: peek the stored
        # cells (activation copies them to the row buffer unchanged) and
        # charge the two ACT/PRE pairs analytically.
        hit_pos = np.flatnonzero(any_hit)
        payloads = np.zeros(num_queries, dtype=np.int64)
        columns = np.zeros(num_queries, dtype=np.int64)
        if hit_pos.size:
            cols = enable_cols[first_hit[hit_pos]].astype(np.int64)
            columns[hit_pos] = cols
            group = cols // layout.group_width
            local = cols - group * layout.group_width
            qstart = layout.query_col_offset
            local = np.where(
                local > qstart, local - layout.queries_per_group, local
            )
            ref_slot = group * layout.refs_per_group + local
            full = self.array.peek_rows(0, self.array.rows)
            orow_in, oentry = np.divmod(ref_slot, layout.offsets_per_row)
            obits = full[
                (base + total_rows + orow_in)[:, None],
                (oentry * OFFSET_BITS)[:, None] + np.arange(OFFSET_BITS),
            ]
            # The payload decoder wraps (fault-corrupted Region-2 words
            # must still address some Region-3 slot).
            offsets = _bit_rows_to_ints(obits) % layout.refs_per_layer
            prow_in, pentry = np.divmod(offsets, layout.payloads_per_row)
            pbits = full[
                (base + total_rows + layout.offset_rows + prow_in)[:, None],
                (pentry * PAYLOAD_BITS)[:, None] + np.arange(PAYLOAD_BITS),
            ]
            payloads[hit_pos] = _bit_rows_to_ints(pbits)
            self.array.charge_untimed_accesses(2 * hit_pos.size)

        segment_size = self.etm.segment_size
        outcomes: List[MatchOutcome] = []
        for j, batch_slot in enumerate(slots):
            query = self._batch[batch_slot]
            if any_hit[j]:
                column = int(columns[j])
                segment = column // segment_size
                # Closed-form ColumnFinder run: the shifter stops at the
                # first live latch (strict=False), which is the lowest
                # hit column since enable_cols ascend.
                cf = ColumnFindResult(
                    column=column,
                    segment=segment,
                    bsr_shift_cycles=segment + 1,
                    copy_cycles=1,
                    rs_shift_cycles=column - segment * segment_size + 1,
                )
                outcomes.append(
                    MatchOutcome(
                        query=query,
                        hit=True,
                        payload=int(payloads[j]),
                        column=column,
                        layer=layer,
                        rows_activated=total_rows + 2,
                        etm_flush_cycles=int(flush_all[j]),
                        cf=cf,
                        etm_terminated_early=False,
                    )
                )
            else:
                outcomes.append(
                    MatchOutcome(
                        query=query,
                        hit=False,
                        payload=None,
                        column=None,
                        layer=layer,
                        rows_activated=int(rows_act[j]),
                        etm_flush_cycles=0,
                        cf=None,
                        etm_terminated_early=bool(early[j]),
                    )
                )
        # Matcher/ETM state after the batch: a per-slot replay's final
        # load_state wins, so only the last slot's state is installed.
        last = num_queries - 1
        latches = np.zeros(layout.row_bits, dtype=np.uint8)
        if any_hit[last]:
            latches[enable_cols[last_hits]] = 1
        self._sync_pipeline_state(seg_max[last], int(compares[last]), latches)
        return outcomes

    def _sr_after(self, seg_max: np.ndarray, steps: int) -> np.ndarray:
        """SR chain contents after ``steps`` pipeline steps (closed form).

        Unrolling ``SR[i](t) = seg_or[i](t) | SR[i-1](t-1)`` with
        ``SR[*](0) = 1`` and ``seg_or[g](t) = (seg_max[g] >= t)`` gives
        ``SR[i](t) = 1`` iff ``i >= t`` (the preset 1 has not drained) or
        some ``d <= i`` had segment ``i-d`` still live at step ``t-d``.
        """
        num_segments = seg_max.size
        sr = np.zeros(num_segments, dtype=np.uint8)
        for i in range(num_segments):
            if i >= steps:
                sr[i] = 1
            else:
                lags = np.arange(i + 1)
                sr[i] = 1 if np.any(seg_max[i - lags] >= steps - lags) else 0
        return sr

    def _sync_pipeline_state(self, seg_max: np.ndarray, steps: int,
                             latches: np.ndarray) -> None:
        """Leave matcher/ETM state exactly as a scalar replay would."""
        self.matchers.load_state(latches, steps)
        segment_or = (seg_max >= steps).astype(np.uint8)
        self.etm.load_state(segment_or, self._sr_after(seg_max, steps), steps)

    def _batch_hit(
        self,
        query: int,
        layer: int,
        hit_columns: np.ndarray,
        seg_max: np.ndarray,
        total_rows: int,
    ) -> MatchOutcome:
        """Synthesize the scalar hit path: all rows activate, SR drain,
        Column Finder, then real Region-2/3 fetches."""
        latches = np.zeros(self.layout.row_bits, dtype=np.uint8)
        latches[hit_columns] = 1
        self.array.charge_untimed_accesses(total_rows)
        self._sync_pipeline_state(seg_max, total_rows, latches)
        flush = self.etm.flush_cycles_after_last_row()
        cf = self.finder.find(latches, strict=False)
        payload = self._fetch_record(layer, cf)
        return MatchOutcome(
            query=query,
            hit=True,
            payload=payload,
            column=cf.column,
            layer=layer,
            rows_activated=total_rows + 2,
            etm_flush_cycles=flush,
            cf=cf,
            etm_terminated_early=False,
        )

    def _batch_miss(
        self, query: int, layer: int, last_divergence: int, seg_max: np.ndarray
    ) -> MatchOutcome:
        """Synthesize the scalar miss path under ETM one-row-late
        semantics: the interrupt races the already-issued next ACT."""
        total_rows = self.layout.kmer_rows
        if self.etm_enabled and last_divergence <= total_rows - 2:
            compares = last_divergence + 1
            rows_activated = last_divergence + 2
            terminated_early = True
        else:
            compares = total_rows
            rows_activated = total_rows
            terminated_early = False
        self.array.charge_untimed_accesses(rows_activated)
        self._sync_pipeline_state(
            seg_max, compares, np.zeros(self.layout.row_bits, dtype=np.uint8)
        )
        return MatchOutcome(
            query=query,
            hit=False,
            payload=None,
            column=None,
            layer=layer,
            rows_activated=rows_activated,
            etm_flush_cycles=0,
            cf=None,
            etm_terminated_early=terminated_early,
        )
