"""Device-level discrete-event simulation: PCIe packets to RRQ.

Extends the single-bank pipeline of :mod:`repro.sieve.controller` to the
whole Section IV-C arrangement:

* the host ships requests in PCIe packets (340 x 12-byte requests per
  4 KB payload) into a bounded input queue (depth sized to saturate the
  device);
* the device unpacks each packet and distributes requests to per-bank
  buffers (64 requests each); a bank whose buffer is full back-pressures
  the unpacker;
* every bank runs the batch-write + multi-stream matching pipeline;
* finished requests accumulate in the Response-Ready Queue and leave in
  packet-sized bursts.

The simulation measures end-to-end makespan against the zero-latency
dispatch ideal, i.e. the PCIe/queueing overhead the paper reports at
4.6-6.7 % — here produced by an executable model rather than a constant.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..dram.timing import SIEVE_TIMING, DramTiming
from ..interconnect.pcie import (
    PCIE4_X16,
    REQUEST_BYTES,
    REQUESTS_PER_PACKET,
    PcieLink,
)
from .controller import BankEventSim, SimRequest, sample_requests
from .layout import SubarrayLayout
from .perfmodel import ModelError, WorkloadStats


@dataclass(frozen=True)
class DeviceSimConfig:
    """Scaled-down device for event-driven runs."""

    banks: int = 8
    subarrays_per_bank: int = 16
    streams_per_bank: int = 8
    link: PcieLink = PCIE4_X16
    queue_depth_packets: int = 24
    timing: DramTiming = SIEVE_TIMING

    def __post_init__(self) -> None:
        if self.banks <= 0 or self.subarrays_per_bank <= 0:
            raise ModelError("banks and subarrays must be positive")
        if self.streams_per_bank <= 0 or self.queue_depth_packets <= 0:
            raise ModelError("streams and queue depth must be positive")


@dataclass
class DeviceSimResult:
    """Outcome of one device-level run."""

    requests: int
    makespan_ns: float
    ideal_ns: float
    pcie_transfer_ns: float
    packets: int
    per_bank_busy_ns: Dict[int, float]

    @property
    def overhead_fraction(self) -> float:
        """End-to-end time over the zero-latency-dispatch ideal."""
        return self.makespan_ns / self.ideal_ns - 1.0

    @property
    def load_imbalance(self) -> float:
        """Max over mean of per-bank busy time."""
        values = list(self.per_bank_busy_ns.values())
        mean = float(np.mean(values)) if values else 0.0
        return max(values) / mean if mean else 1.0


class DeviceEventSim:
    """Whole-device event-driven model."""

    def __init__(
        self,
        layout: SubarrayLayout,
        config: Optional[DeviceSimConfig] = None,
    ) -> None:
        self.layout = layout
        self.config = config or DeviceSimConfig()

    def packet_transfer_ns(self) -> float:
        """Wire time of one request packet on the link."""
        payload = REQUESTS_PER_PACKET * REQUEST_BYTES
        return payload / (self.config.link.effective_gbs * 1e9) * 1e9

    def run(self, requests: Sequence[SimRequest]) -> DeviceSimResult:
        """Run all requests through packets -> bank buffers -> pipelines.

        Requests carry device-global subarray ids in
        ``[0, banks x subarrays_per_bank)``; bank = subarray // per_bank.
        """
        if not requests:
            raise ModelError("no requests to simulate")
        cfg = self.config
        per_bank: Dict[int, List[SimRequest]] = {b: [] for b in range(cfg.banks)}
        # 1. PCIe delivery: packets arrive back-to-back, bounded by the
        #    input queue; each packet's requests become available at its
        #    arrival time.
        packet_ns = self.packet_transfer_ns()
        packets = [
            requests[i : i + REQUESTS_PER_PACKET]
            for i in range(0, len(requests), REQUESTS_PER_PACKET)
        ]
        arrival: Dict[int, float] = {}
        # The queue lets `queue_depth_packets` packets be in flight ahead
        # of consumption; with the device slower than the link, arrivals
        # are effectively back-to-back, so the model is arrival = i*T.
        for i, packet in enumerate(packets):
            t = (i + 1) * packet_ns
            for req in packet:
                arrival[req.request_id] = t
                bank = req.subarray // cfg.subarrays_per_bank
                if bank >= cfg.banks:
                    raise ModelError(
                        f"request {req.request_id} targets bank {bank} "
                        f">= {cfg.banks}"
                    )
                per_bank[bank].append(req)
        # 2. Per-bank pipelines (batch write + streams), offset by each
        #    request's arrival: a batch may only be written once all its
        #    requests have arrived.
        bank_sim = BankEventSim(
            self.layout, streams=cfg.streams_per_bank, timing=cfg.timing
        )
        makespan = 0.0
        busy: Dict[int, float] = {}
        batch_size = self.layout.queries_per_group
        for bank, queue in per_bank.items():
            if not queue:
                busy[bank] = 0.0
                continue
            io_free = 0.0
            free_at = [0.0] * cfg.streams_per_bank
            heapq.heapify(free_at)
            bank_end = 0.0
            stream_busy = 0.0
            per_subarray: Dict[int, List[SimRequest]] = {}
            for req in queue:
                per_subarray.setdefault(req.subarray, []).append(req)
            for subq in per_subarray.values():
                for start in range(0, len(subq), batch_size):
                    batch = subq[start : start + batch_size]
                    batch_arrival = max(arrival[r.request_id] for r in batch)
                    io_start = max(io_free, batch_arrival)
                    ready = io_start + bank_sim.batch_write_ns
                    io_free = ready
                    for req in batch:
                        s = max(heapq.heappop(free_at), ready)
                        service = bank_sim.matching_ns(req)
                        end = s + service
                        stream_busy += service
                        heapq.heappush(free_at, end)
                        bank_end = max(bank_end, end)
            busy[bank] = stream_busy
            makespan = max(makespan, bank_end)
        # 3. RRQ: responses leave in packet bursts; the final partial
        #    packet adds one transfer on the return path (full duplex, so
        #    only the trailing packet extends the makespan).
        makespan += packet_ns
        # Ideal: requests at every bank at t=0, no trailing transfer.
        ideal = max(
            bank_sim.run(queue).total_ns for queue in per_bank.values() if queue
        )
        return DeviceSimResult(
            requests=len(requests),
            makespan_ns=makespan,
            ideal_ns=ideal,
            pcie_transfer_ns=len(packets) * packet_ns,
            packets=len(packets),
            per_bank_busy_ns=busy,
        )


def simulate_device(
    workload: WorkloadStats,
    num_requests: int = 20_000,
    config: Optional[DeviceSimConfig] = None,
    layout: Optional[SubarrayLayout] = None,
    seed: int = 0,
) -> DeviceSimResult:
    """Sample a request trace from a workload and run the device sim."""
    config = config or DeviceSimConfig()
    layout = layout or SubarrayLayout(k=workload.k)
    rng = np.random.default_rng(seed)
    requests = sample_requests(
        workload,
        num_requests,
        subarrays=config.banks * config.subarrays_per_bank,
        rng=rng,
    )
    return DeviceEventSim(layout, config).run(requests)
