"""Early Termination Mechanism (paper Section IV-A, Figure 9).

The ETM watches the matcher latches and interrupts further row
activation once every latch holds 0 — i.e. once every candidate in the
subarray has mismatched.  Because an 8192-wide OR cannot settle in one
DRAM row cycle, the latch row is split into segments of 256; each
segment ORs its own latches within a row cycle and a Segment Register
(SR) chain pipelines partial results across segments.

Two signals matter to the rest of the system:

* ``terminated`` — the detector output.  We model the detector as the
  OR of (a) every segment's combinational OR and (b) every SR: this is
  zero one cycle after the last live latch dies *plus* the time for
  stale SR 1s to drain, exactly the behaviour Figure 9 steps through
  (all latches zero at row cycle 3, detection at row cycle 4).
* ``flush_cycles`` — after the *last* row activation of a query, the SR
  pipeline must drain before the Column Finder can trust the segment
  snapshot; worst case one cycle per segment (paper Section IV-A).

The same class also backs the Backup Segment Registers (BSRs) used by
the Column Finder, which mirror the SRs.
"""

from __future__ import annotations

from typing import List

import numpy as np

DEFAULT_SEGMENT_SIZE = 256


class EtmError(ValueError):
    """Raised on configuration or protocol errors."""


class EtmPipeline:
    """Segmented OR pipeline over a matcher latch row."""

    def __init__(self, width: int, segment_size: int = DEFAULT_SEGMENT_SIZE) -> None:
        if width <= 0:
            raise EtmError(f"width must be positive, got {width}")
        if segment_size <= 0:
            raise EtmError(f"segment_size must be positive, got {segment_size}")
        self.width = width
        self.segment_size = segment_size
        self.num_segments = -(-width // segment_size)
        # SR chain state; SR[i] belongs to segment i.  BSRs mirror SRs.
        self._sr = np.ones(self.num_segments, dtype=np.uint8)
        self._bsr = np.ones(self.num_segments, dtype=np.uint8)
        self._segment_or = np.ones(self.num_segments, dtype=np.uint8)
        self.cycles = 0

    def reset(self) -> None:
        """Preset SRs/BSRs to 1 for a new query (latches preset to match)."""
        self._sr[:] = 1
        self._bsr[:] = 1
        self._segment_or[:] = 1
        self.cycles = 0

    def segment_bounds(self, segment: int) -> range:
        """Latch columns covered by ``segment``."""
        if not 0 <= segment < self.num_segments:
            raise EtmError(
                f"segment {segment} out of range [0, {self.num_segments})"
            )
        start = segment * self.segment_size
        return range(start, min(start + self.segment_size, self.width))

    def step(self, latches: np.ndarray) -> None:
        """Advance the pipeline by one DRAM row cycle.

        Each segment ORs its own latches (fits one row cycle, Table III)
        and the SR chain shifts: ``SR[i] <- seg_or[i] | SR[i-1]``.
        BSRs track the per-segment ORs directly (they are what the
        Column Finder shifts through later).
        """
        latches = np.asarray(latches, dtype=np.uint8)
        if latches.shape != (self.width,):
            raise EtmError(
                f"latch row must have shape ({self.width},), got {latches.shape}"
            )
        seg_or = np.zeros(self.num_segments, dtype=np.uint8)
        for seg in range(self.num_segments):
            bounds = self.segment_bounds(seg)
            seg_or[seg] = 1 if latches[bounds.start : bounds.stop].any() else 0
        prev_sr = self._sr.copy()
        self._sr[0] = seg_or[0]
        if self.num_segments > 1:
            self._sr[1:] = seg_or[1:] | prev_sr[:-1]
        self._segment_or = seg_or
        self._bsr = seg_or.copy()
        self.cycles += 1

    def load_state(
        self, segment_or: np.ndarray, sr: np.ndarray, cycles: int
    ) -> None:
        """Install pipeline state computed by the batched fast path.

        ``segment_or`` is the per-segment OR after the final step (the
        BSRs mirror it); ``sr`` is the SR chain contents.  Restores the
        exact state a step-by-step replay would have left behind.
        """
        segment_or = np.asarray(segment_or, dtype=np.uint8)
        sr = np.asarray(sr, dtype=np.uint8)
        if segment_or.shape != (self.num_segments,) or sr.shape != (
            self.num_segments,
        ):
            raise EtmError(
                f"state arrays must have shape ({self.num_segments},)"
            )
        if cycles < 0:
            raise EtmError(f"cycles must be >= 0, got {cycles}")
        self._segment_or = segment_or.copy()
        self._bsr = segment_or.copy()
        self._sr = sr.copy()
        self.cycles = cycles

    @property
    def terminated(self) -> bool:
        """Detector output: no segment saw a live candidate this cycle.

        All segments evaluate their ORs in parallel within the row cycle
        (Table III: one segment fits the ~44 ns budget); the detector
        combines the latched per-segment bits (BSRs), a handful of wires
        into a small OR.  The controller observes it one row cycle after
        the killing comparison, so the subarray simulator charges one
        extra activation.  A strictly serial SR-chain detector would add
        up to ``num_segments`` cycles of stale-1 drain; that cost is
        still modelled where the paper charges it — on hits, before the
        Column Finder can trust the snapshot
        (:meth:`flush_cycles_after_last_row`).
        """
        return not self._segment_or.any()

    @property
    def live_segments(self) -> List[int]:
        """Segments whose OR is currently 1 (candidates still alive)."""
        return [int(s) for s in np.flatnonzero(self._segment_or)]

    @property
    def bsr(self) -> np.ndarray:
        """Backup Segment Register snapshot (for the Column Finder)."""
        view = self._bsr.view()
        view.flags.writeable = False
        return view

    def flush_cycles_after_last_row(self) -> int:
        """Worst-case SR drain after the final row activation of a query.

        The stale 1 furthest from the chain output must travel the whole
        chain: ``num_segments`` row cycles in the worst case (the paper
        quotes 256 for its widest configuration).  We return the exact
        drain for the current state: distance from the most significant
        live SR to the end of the chain, or 0 when already drained.
        """
        live = np.flatnonzero(self._sr)
        if live.size == 0:
            return 0
        return int(self.num_segments - live.min())
