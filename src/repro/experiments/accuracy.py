"""Classification-accuracy study over the paper's accuracy profiles.

Table II's three *Accuracy* files exist because the paper's pipeline
must not change classification outcomes — Sieve returns exactly the
payloads the software engines would (our integration tests prove the
engines agree bit-for-bit).  What remains to characterize is how the
read profiles themselves behave: HiSeq (0.1 % errors), MiSeq (0.5 %),
and simBA-5 (5 %) degrade k-mer hit rates and therefore classification
rates very differently — the effect that also drives each benchmark's
ETM statistics.

This runner simulates scaled-down versions of the three accuracy files
against a shared synthetic reference, classifies with both the simple
majority rule and Kraken's LCA path scoring, and reports per-profile
rates.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..baselines.classifier import (
    classify_read,
    classify_read_lca,
    summarize,
)
from ..genomics.synthetic import TABLE_II_PROFILES, build_dataset
from .results import FigureResult

#: Scaled-down read counts per profile (full scale is 10^4).
ACCURACY_READS = 60


def accuracy_study(
    reads_per_profile: int = ACCURACY_READS,
    num_species: int = 6,
    genome_length: int = 1500,
    novel_fraction: float = 0.15,
    seed: int = 77,
    k: Optional[int] = None,
) -> FigureResult:
    """Classification quality per accuracy profile (HA/MA/SA)."""
    k = k or 21  # shorter than the paper's 31 to keep synthetic genomes hit-rich
    result = FigureResult(
        figure="Accuracy study",
        title="Classification quality per query profile",
        headers=[
            "profile",
            "error_rate",
            "kmer_hit_rate",
            "classified_majority",
            "accuracy_majority",
            "accuracy_lca",
        ],
    )
    for name in ("HA", "MA", "SA"):
        profile = TABLE_II_PROFILES[name]
        dataset = build_dataset(
            k=k,
            num_species=num_species,
            genome_length=genome_length,
            num_reads=reads_per_profile,
            novel_fraction=novel_fraction,
            seed=seed,
            profile=profile,
        )
        lookup = dataset.database.get
        majority = summarize(
            classify_read(read, k, lookup) for read in dataset.reads
        )
        lca = summarize(
            classify_read_lca(read, k, lookup, dataset.taxonomy)
            for read in dataset.reads
        )
        result.rows.append(
            [
                profile.description,
                profile.error_rate,
                majority.kmer_hit_rate,
                majority.classification_rate,
                majority.accuracy if majority.accuracy is not None else 0.0,
                lca.accuracy if lca.accuracy is not None else 0.0,
            ]
        )
    result.notes = (
        "all engines (dict/CLARK/Kraken/Sieve) return identical payloads "
        "(tests/test_integration.py), so accuracy is a property of the "
        "profile: simBA-5's 5 % errors break most 21-mers, collapsing the "
        "hit rate, yet majority voting still classifies most reads."
    )
    return result


def hit_rate_by_profile(
    reads_per_profile: int = ACCURACY_READS, seed: int = 77
) -> Dict[str, float]:
    """Measured k-mer hit rate per profile (harness helper)."""
    rates = {}
    for name in ("HA", "MA", "SA"):
        dataset = build_dataset(
            k=21,
            num_species=6,
            genome_length=1500,
            num_reads=reads_per_profile,
            novel_fraction=0.15,
            seed=seed,
            profile=TABLE_II_PROFILES[name],
        )
        rates[name] = dataset.measured_hit_rate()
    return rates
