"""The claims ledger: every checkable paper claim, evaluated in one pass.

Each entry states the claim as the paper makes it, the band we accept
(paper numbers with the tolerance DESIGN.md argues for), the measured
value from this repository's models, and a verdict.  The benchmark
suite asserts the ledger is all-green; the CLI prints it
(``sieve-repro claims``).

All model evaluations the ledger needs are dispatched as one
:class:`~repro.fleet.jobs.PerfPointJob` batch through the fleet
(:mod:`repro.fleet`), so the ledger parallelizes across worker
processes; the claim formulas then read from the result table in the
same order the sequential implementation used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..baselines.mlp import ideal_machine_analysis
from ..fleet.core import run_jobs
from ..fleet.jobs import PerfPointJob
from ..hardware.area import DEFAULT_AREA_MODEL
from ..hardware.circuits import all_feasibility_reports
from ..hardware.thermal import max_concurrent_per_bank
from ..interconnect.pcie import PCIE4_X16, PcieModel
from .results import FigureResult, geomean
from .workloads import paper_benchmarks


@dataclass(frozen=True)
class Claim:
    """One checkable claim."""

    claim_id: str
    statement: str
    paper_value: str
    low: float
    high: float
    measure: Callable[["_Context"], float]


#: SALP degrees the plateau search (C10) probes beyond the T3.1/T3.8
#: evaluations the ledger already has on every benchmark.
_PLATEAU_DEGREES = (2, 4, 8, 16, 32, 64, 128)

#: Ledger-wide design points, evaluated on every paper benchmark.
_DESIGN_SPECS: List[tuple] = [
    ("CPU", {"design": "CPU"}),
    ("T1", {"design": "T1"}),
    ("T2.1", {"design": "T2", "units": 1}),
    ("T2.16", {"design": "T2", "units": 16}),
    ("T2.128", {"design": "T2", "units": 128}),
    ("T3.1", {"design": "T3", "units": 1}),
    ("T3.8", {"design": "T3", "units": 8}),
    ("T3.8.noetm", {"design": "T3", "units": 8, "etm_enabled": False}),
    ("ROW.8", {"design": "ROW_MAJOR", "units": 8}),
    ("CD.8", {"design": "COMPUTE_DRAM", "units": 8}),
]


class _Context:
    """Shared expensive computations for the ledger (fleet-dispatched)."""

    def __init__(self) -> None:
        benches = paper_benchmarks()
        self.workloads = [b.workload() for b in benches]
        jobs: List[PerfPointJob] = []
        index: List[tuple] = []
        for key, spec in _DESIGN_SPECS:
            for bench in benches:
                jobs.append(PerfPointJob(benchmark=bench.name, **spec))
                index.append((key, bench.name))
        for bench in benches:
            if bench.name.startswith("C."):
                jobs.append(PerfPointJob(design="GPU", benchmark=bench.name))
                index.append(("GPU", bench.name))
        last = benches[-1]
        for sa in _PLATEAU_DEGREES:
            jobs.append(PerfPointJob(design="T3", benchmark=last.name, units=sa))
            index.append((f"T3.sa{sa}", last.name))
        payloads = run_jobs(jobs)
        self.results: Dict[str, Dict[str, dict]] = {}
        for (key, name), payload in zip(index, payloads):
            self.results.setdefault(key, {})[name] = payload

    def time_s(self, design: str, name: str) -> float:
        return self.results[design][name]["time_s"]

    def energy_j(self, design: str, name: str) -> float:
        return self.results[design][name]["energy_j"]

    def speedups(self, design: str) -> List[float]:
        return [
            self.time_s("CPU", w.name) / self.time_s(design, w.name)
            for w in self.workloads
        ]

    def energy_savings(self, design: str) -> List[float]:
        return [
            self.energy_j("CPU", w.name) / self.energy_j(design, w.name)
            for w in self.workloads
        ]


def _claims() -> List[Claim]:
    return [
        Claim(
            "C1", "Type-1 speedup over CPU", "1.01x-3.8x",
            1.0, 4.2,
            lambda c: geomean(c.speedups("T1")),
        ),
        Claim(
            "C2", "Type-2 family speedup over CPU (16 CB midpoint)",
            "3.74x-76.6x", 3.74, 76.6,
            lambda c: geomean(c.speedups("T2.16")),
        ),
        Claim(
            "C3", "Type-3 average speedup over CPU",
            "210x (intro) / 326x (abstract)", 150.0, 400.0,
            lambda c: geomean(c.speedups("T3.8")),
        ),
        Claim(
            "C4", "Type-3 energy saving over CPU",
            "35x-94x across the paper's figures", 35.0, 120.0,
            lambda c: geomean(c.energy_savings("T3.8")),
        ),
        Claim(
            "C5", "Type-1 vs GPU (slower but wins energy)",
            "3x-5x slower", 0.15, 0.7,
            lambda c: geomean(
                [
                    c.time_s("GPU", w.name) / c.time_s("T1", w.name)
                    for w in c.workloads
                    if w.name.startswith("C.")
                ]
            ),
        ),
        Claim(
            "C6", "Type-3 vs GPU speedup", "33x-55x", 15.0, 60.0,
            lambda c: geomean(
                [
                    c.time_s("GPU", w.name) / c.time_s("T3.8", w.name)
                    for w in c.workloads
                    if w.name.startswith("C.")
                ]
            ),
        ),
        Claim(
            "C7", "ETM contribution over col-major without ETM",
            "5.2x-7.2x", 4.0, 8.0,
            lambda c: geomean(
                [
                    c.time_s("T3.8.noetm", w.name) / c.time_s("T3.8", w.name)
                    for w in c.workloads
                ]
            ),
        ),
        Claim(
            "C8", "T2.1CB faster than T1", "1.39x-1.94x", 1.3, 2.1,
            lambda c: geomean(c.speedups("T2.1"))
            / geomean(c.speedups("T1")),
        ),
        Claim(
            "C9", "T3.1SA over T2.128CB (slight)", "~1x (slight trail)",
            1.0, 1.3,
            lambda c: geomean(c.speedups("T3.1"))
            / geomean(c.speedups("T2.128")),
        ),
        Claim(
            "C10", "SALP plateau point", "plateaus after 8 subarrays",
            5.0, 12.0,
            lambda c: _plateau_point(c),
        ),
        Claim(
            "C11", "Type-3 area overhead", "10.90 %", 0.10, 0.12,
            lambda c: DEFAULT_AREA_MODEL.type3_overhead(),
        ),
        Claim(
            "C12", "Type-2 128 CB area overhead", "10.75 %", 0.095, 0.115,
            lambda c: DEFAULT_AREA_MODEL.type2_overhead(128),
        ),
        Claim(
            "C13", "PCIe overhead at Type-3 rates", "4.6 %-6.7 %",
            0.045, 0.068,
            lambda c: PcieModel(PCIE4_X16).overhead_fraction(
                c.workloads[-1].num_kmers
                / c.time_s("T3.8", c.workloads[-1].name)
            ),
        ),
        Claim(
            "C14", "Ideal-machine cores to match Type-3", "over 215",
            215.0, float("inf"),
            lambda c: ideal_machine_analysis(
                c.workloads[-1].num_kmers
                / c.time_s("T3.8", c.workloads[-1].name)
            ).cores_needed_to_match,
        ),
        Claim(
            "C15", "Matcher bitline loading (SPICE)", "negligible (~0.9 %)",
            0.0, 0.05,
            lambda c: all_feasibility_reports()[0].value,
        ),
        Claim(
            "C16", "Concurrent-subarray ceiling (power delivery)",
            "all-128 infeasible", 2.0, 127.0,
            lambda c: float(max_concurrent_per_bank(75.0)),
        ),
        Claim(
            "C17", "Row-major vs col-major (no ETM)",
            "similar, slightly worse", 1.0, 2.5,
            lambda c: geomean(c.speedups("T3.8.noetm"))
            / geomean(c.speedups("ROW.8")),
        ),
        Claim(
            "C18", "ComputeDRAM above row- and col-major",
            "outperforms both", 1.01, 10.0,
            lambda c: geomean(c.speedups("CD.8"))
            / geomean(c.speedups("T3.8.noetm")),
        ),
        Claim(
            "C19", "C.MT.BG slower per k-mer than C.ST.BG (3.28x matches)",
            "MT performs worse", 1.001, 2.0,
            lambda c: _per_kmer_ratio(c, "C.MT.BG", "C.ST.BG"),
        ),
    ]


def _per_kmer_ratio(c: "_Context", slow_name: str, fast_name: str) -> float:
    """Per-k-mer Type-2 time ratio between two benchmarks."""
    slow = next(w for w in c.workloads if w.name == slow_name)
    fast = next(w for w in c.workloads if w.name == fast_name)
    slow_s = c.time_s("T2.16", slow.name) / slow.num_kmers
    fast_s = c.time_s("T2.16", fast.name) / fast.num_kmers
    return slow_s / fast_s


def _plateau_point(c: "_Context") -> float:
    """First SALP degree whose doubling gains < 5 %."""
    wl = c.workloads[-1]
    prev = c.time_s("T3.1", wl.name)
    for sa in _PLATEAU_DEGREES:
        cur = c.time_s(f"T3.sa{sa}", wl.name)
        if prev / cur < 1.05:
            return float(sa // 2)
        prev = cur
    return 128.0


def claims_ledger() -> FigureResult:
    """Evaluate every claim; returns the ledger as a FigureResult."""
    context = _Context()
    result = FigureResult(
        figure="Claims ledger",
        title="Every checkable paper claim vs. this reproduction",
        headers=["id", "claim", "paper", "band", "measured", "verdict"],
    )
    failures = 0
    for claim in _claims():
        measured = float(claim.measure(context))
        ok = claim.low <= measured <= claim.high
        failures += not ok
        band = (
            f"[{claim.low:g}, {claim.high:g}]"
            if claim.high != float("inf")
            else f">= {claim.low:g}"
        )
        result.rows.append(
            [
                claim.claim_id,
                claim.statement,
                claim.paper_value,
                band,
                measured,
                "PASS" if ok else "FAIL",
            ]
        )
    result.notes = (
        f"{len(result.rows) - failures}/{len(result.rows)} claims inside "
        "their accepted bands (bands and the rationale for each tolerance "
        "are derived in EXPERIMENTS.md)."
    )
    return result
