"""Name -> runner registry of every experiment entry point.

Single source of truth consumed by three frontends:

* ``sieve-repro run <name>`` (:mod:`repro.cli`),
* the process-parallel fleet (``python -m repro.fleet``), whose
  golden-result suite pins each runner's serialized output
  (``tests/golden/<name>.json``, see docs/TESTING.md),
* the benchmark harness's figure-regeneration benchmarks.

Every runner is a zero-argument callable returning a
:class:`~repro.experiments.results.FigureResult`, and must be
deterministic: the golden suite replays each one at ``--jobs 1`` and
``--jobs 4`` and requires byte-identical serialized output.
"""

from __future__ import annotations

from typing import Callable, Dict

from .accuracy import accuracy_study
from .claims import claims_ledger
from .faults import fault_sweep
from .intro_claims import intro_claims
from .mapping import mapping_sweep
from .ablations import (
    ablation_device_sim,
    ablation_esp_model,
    ablation_segment_size,
    ablation_power_envelope,
    ablation_steady_state,
    ablation_technology,
    ablation_type1_functional,
)
from .figures import (
    fig13_row_vs_col,
    fig14_vs_cpu,
    fig15_vs_gpu,
    fig16_salp_sweep,
    fig17_cb_sweep,
    sensitivity_bandwidth,
    sensitivity_etm_off,
    sensitivity_pcie,
)
from .motivation import (
    area_overheads,
    fig01_breakdown,
    fig06_esp,
    tab01_machines,
    tab02_queries,
    tab03_components,
)
from .results import FigureResult
from .sensitivity import (
    sensitivity_capacity,
    sensitivity_hit_rate,
    sensitivity_k,
)

EXPERIMENTS: Dict[str, Callable[[], FigureResult]] = {
    "fig1": fig01_breakdown,
    "fig6": fig06_esp,
    "tab1": tab01_machines,
    "tab2": tab02_queries,
    "tab3": tab03_components,
    "area": area_overheads,
    "fig13": fig13_row_vs_col,
    "fig14": fig14_vs_cpu,
    "fig15": fig15_vs_gpu,
    "fig16": fig16_salp_sweep,
    "fig17": fig17_cb_sweep,
    "etm": sensitivity_etm_off,
    "pcie": sensitivity_pcie,
    "bandwidth": sensitivity_bandwidth,
    "accuracy": accuracy_study,
    "intro": intro_claims,
    "claims": claims_ledger,
    "k-sweep": sensitivity_k,
    "hit-sweep": sensitivity_hit_rate,
    "capacity": sensitivity_capacity,
    "abl-steady": ablation_steady_state,
    "abl-esp": ablation_esp_model,
    "abl-power": ablation_power_envelope,
    "abl-tech": ablation_technology,
    "abl-type1": ablation_type1_functional,
    "abl-device": ablation_device_sim,
    "abl-segment": ablation_segment_size,
    "fault_sweep": fault_sweep,
    "mapping_sweep": mapping_sweep,
}


def run_experiment(name: str) -> FigureResult:
    """Run one registered experiment by name."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
    return runner()
