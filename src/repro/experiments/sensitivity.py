"""Additional sensitivity studies the paper's claims imply.

The paper asserts (without dedicated figures) that Sieve's advantage is
robust to the k-mer length, that hit-heavy workloads degrade gracefully
(the C.MT.BG discussion), and that "the processing power of Sieve scales
linearly with respect to its storage capacity" all the way to 500 GB
devices with a sub-2 MB index.  These runners quantify each claim.

Every sweep point dispatches through the fleet
(:class:`~repro.fleet.jobs.PerfPointJob`), so sweeps parallelize across
worker processes with byte-identical output at any ``--jobs`` count.
"""

from __future__ import annotations

from typing import List

from ..dram.geometry import DramGeometry
from ..fleet.core import run_jobs
from ..fleet.jobs import PerfPointJob
from ..sieve.index import INDEX_ENTRY_BYTES
from .results import FigureResult
from .workloads import paper_benchmarks


def sensitivity_k(kmer_lengths=(21, 25, 31)) -> FigureResult:
    """Speedup vs. k: longer k-mers mean more pattern rows per query for
    Sieve but also more work per lookup for the CPU."""
    base = paper_benchmarks()[-1]
    result = FigureResult(
        figure="Sensitivity S1",
        title="k-mer length sweep (Type-3, 8 SA vs. CPU)",
        headers=["k", "pattern_rows", "t3_ns_per_kmer", "speedup_vs_cpu"],
    )
    jobs: List[PerfPointJob] = []
    for k in kmer_lengths:
        jobs.append(
            PerfPointJob(design="T3", benchmark=base.name, units=8, k=k)
        )
        jobs.append(PerfPointJob(design="CPU", benchmark=base.name, k=k))
    payloads = iter(run_jobs(jobs))
    for k in kmer_lengths:
        res = next(payloads)
        cpu_res = next(payloads)
        num_kmers = base.profile.kmer_count(k)
        result.rows.append(
            [
                k,
                2 * k,
                res["time_s"] * 1e9 / num_kmers,
                cpu_res["time_s"] / res["time_s"],
            ]
        )
    result.notes = (
        "Sieve's per-query work grows with 2k rows while the CPU's "
        "per-lookup cost is k-independent (hash/search dominated), so the "
        "speedup shrinks mildly with k but stays in the hundreds."
    )
    return result


def sensitivity_hit_rate(
    hit_rates=(0.001, 0.01, 0.0328, 0.1, 0.3, 1.0)
) -> FigureResult:
    """Hit-rate sweep: the generalized C.MT.BG effect."""
    base = paper_benchmarks()[-1]
    result = FigureResult(
        figure="Sensitivity S2",
        title="k-mer hit-rate sweep (32 GB devices vs. CPU)",
        headers=["hit_rate", "t2_16cb_speedup", "t3_8sa_speedup"],
    )
    jobs: List[PerfPointJob] = []
    for rate in hit_rates:
        jobs.append(
            PerfPointJob(design="CPU", benchmark=base.name, hit_rate=rate)
        )
        jobs.append(
            PerfPointJob(design="T2", benchmark=base.name, units=16,
                         hit_rate=rate)
        )
        jobs.append(
            PerfPointJob(design="T3", benchmark=base.name, units=8,
                         hit_rate=rate)
        )
    payloads = iter(run_jobs(jobs))
    for rate in hit_rates:
        cpu_time = next(payloads)["time_s"]
        t2_res = next(payloads)
        t3_res = next(payloads)
        result.rows.append(
            [
                rate,
                cpu_time / t2_res["time_s"],
                cpu_time / t3_res["time_s"],
            ]
        )
    result.notes = (
        "hits defeat early termination (all 2k rows activate), so speedup "
        "decays with hit rate — gracefully: even at 100 % hits Sieve wins."
    )
    return result


def sensitivity_capacity(
    capacities_gib=(32, 64, 128, 256, 512)
) -> FigureResult:
    """Capacity scaling to the paper's 500 GB point, with index size."""
    base = paper_benchmarks()[-1]
    base_wl = base.workload()
    result = FigureResult(
        figure="Sensitivity S3",
        title="Storage-capacity scaling (Type-3, 8 SA)",
        headers=[
            "capacity_gib",
            "banks",
            "time_ms",
            "Gqps",
            "index_mb",
        ],
    )
    jobs = [
        PerfPointJob(
            design="T3", benchmark=base.name, units=8,
            capacity_gib=float(gib),
            ranks=max(1, gib // 2),  # 2 GiB/rank at the paper's organization
        )
        for gib in capacities_gib
    ]
    payloads = run_jobs(jobs)
    for gib, res in zip(capacities_gib, payloads):
        ranks = max(1, gib // 2)
        geometry = DramGeometry.for_capacity(float(gib), ranks=ranks)
        index_mb = geometry.total_subarrays * INDEX_ENTRY_BYTES / 2**20
        result.rows.append(
            [
                gib,
                geometry.total_banks,
                res["time_s"] * 1e3,
                base_wl.num_kmers / res["time_s"] / 1e9,
                index_mb,
            ]
        )
    result.notes = (
        "throughput scales linearly with capacity (more banks).  The "
        "subarray-granular index grows linearly too: ~6 MB at 512 GB vs "
        "the paper's '<2 MB at 500 GB' claim — honoring that claim "
        "requires coarser (multi-subarray) index entries resolved by "
        "controller-side range tables, the same mechanism our layers "
        "already use (EXPERIMENTS.md deviation #5).  Either way the table "
        "is trivially host-resident."
    )
    return result
