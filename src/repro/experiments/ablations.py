"""Ablation studies for the reproduction's own design choices.

Beyond the paper's figures, DESIGN.md commits to ablations for the
modelling decisions this reproduction makes:

* the analytic steady-state rule vs. an event-driven pipeline,
* the ETM termination-distribution choice (paper-calibrated vs.
  analytic max-of-random vs. functionally measured),
* power-delivery / thermal envelopes vs. the SALP sweep,
* the DRAM technology choice (the paper's named future work).
"""

from __future__ import annotations

from typing import List, Optional

from ..fleet.core import Job, run_jobs
from ..fleet.jobs import (
    DeviceSimJob,
    EspAblationJob,
    PerfPointJob,
    SteadyStateJob,
    Type1FunctionalJob,
)
from ..hardware.thermal import (
    DRAM_TEMP_LIMIT_C,
    max_concurrent_per_bank,
    power_budget_report,
)
from ..interconnect.dimm import DimmEnvelope
from ..sieve.extensions import technology_comparison
from ..sieve.perfmodel import EspModel
from .results import FigureResult
from .workloads import PAPER_K, paper_benchmarks


def ablation_steady_state() -> FigureResult:
    """Event-driven bank pipeline vs. the analytic closed form."""
    result = FigureResult(
        figure="Ablation A1",
        title="Event-driven pipeline vs. analytic steady state (per-bank)",
        headers=[
            "streams",
            "event_ns_per_query",
            "analytic_ns_per_query",
            "ratio",
            "io_utilization",
            "stream_utilization",
        ],
    )
    stream_counts = (1, 2, 4, 8, 16, 32)
    payloads = run_jobs([SteadyStateJob(streams=s) for s in stream_counts])
    for streams, report in zip(stream_counts, payloads):
        result.rows.append(
            [
                streams,
                report["event_ns_per_query"],
                report["analytic_ns_per_query"],
                report["ratio"],
                report["io_utilization"],
                report["stream_utilization"],
            ]
        )
    result.notes = (
        "the closed form max(matching/streams, io) used by every figure "
        "tracks the discrete-event pipeline within ~5 % in both regimes, "
        "including the crossover that produces the Figure-16 plateau."
    )
    return result


def ablation_esp_model(measured: Optional[EspModel] = None) -> FigureResult:
    """How the ETM termination-distribution choice moves the headline."""
    candidates = [
        ("paper Fig-6 calibration", EspModel.paper_fig6(PAPER_K)),
        ("max over 32 random candidates", EspModel.uniform_random(PAPER_K, 32)),
        ("max over 7168 random candidates", EspModel.uniform_random(PAPER_K, 7168)),
    ]
    if measured is not None:
        candidates.append(("functionally measured", measured))
    result = FigureResult(
        figure="Ablation A2",
        title="ETM termination distribution vs. Type-3 outcome",
        headers=[
            "esp_model",
            "mean_rows_per_miss",
            "t3_time_ms",
            "etm_gain_vs_noETM",
        ],
    )
    jobs: List[Job] = [
        PerfPointJob(
            design="T3", benchmark=paper_benchmarks()[-1].name, units=8,
            etm_enabled=False,
        )
    ]
    jobs += [
        EspAblationJob(label=name, probabilities=tuple(esp.probabilities))
        for name, esp in candidates
    ]
    payloads = run_jobs(jobs)
    no_etm_time_s = payloads[0]["time_s"]
    for (name, esp), payload in zip(candidates, payloads[1:]):
        result.rows.append(
            [
                name,
                payload["mean_rows"],
                payload["time_s"] * 1e3,
                no_etm_time_s / payload["time_s"],
            ]
        )
    result.notes = (
        "the paper's 5.2-7.2x ETM benefit requires the Fig-6-calibrated "
        "distribution (effective ~32 independent candidates); assuming all "
        "7k subarray candidates are independent still leaves a >3x gain."
    )
    return result


def ablation_power_envelope() -> FigureResult:
    """Power delivery / thermal ceilings vs. the SALP design space."""
    result = FigureResult(
        figure="Ablation A3",
        title="Power-delivery and thermal ceilings on concurrent subarrays",
        headers=[
            "envelope",
            "budget_w",
            "max_SA_per_bank",
            "power_at_8SA_w",
            "temp_at_8SA_C",
        ],
    )
    report8 = power_budget_report(8, budget_w=75.0)
    envelopes = [
        ("DDR4 DIMM slot", DimmEnvelope(32).power_budget_w, 1.8),
        ("PCIe x16 slot", 75.0, 0.9),
        ("PCIe + 8-pin aux", 150.0, 0.9),
    ]
    for name, budget, theta in envelopes:
        ceiling = max_concurrent_per_bank(budget, theta_ja=theta)
        result.rows.append(
            [
                name,
                budget,
                ceiling,
                report8.total_power_w,
                report8.steady_state_temp_c,
            ]
        )
    result.notes = (
        f"the paper's Type-3 choice of 8 concurrent subarrays fits the PCIe "
        f"envelope with margin (temp limit {DRAM_TEMP_LIMIT_C} C); running "
        "all 128 concurrently is infeasible — the paper's own Section VI-C "
        "caveat, quantified."
    )
    return result


def ablation_technology() -> FigureResult:
    """The paper's future work: Sieve on 3D-stacked HBM and on NVM."""
    workload = paper_benchmarks()[-1].workload()
    result = FigureResult(
        figure="Ablation A4",
        title="Sieve Type-3 across memory technologies",
        headers=[
            "technology",
            "capacity_gib",
            "banks",
            "time_ms",
            "Mqps_per_gib",
            "energy_j",
        ],
    )
    for variant in technology_comparison(workload):
        result.rows.append(
            [
                variant.name,
                variant.capacity_gib,
                variant.total_banks,
                variant.result.time_s * 1e3,
                variant.qps_per_gib / 1e6,
                variant.result.energy_j,
            ]
        )
    result.notes = (
        "3D stacking multiplies banks per GB (throughput), NVM multiplies "
        "capacity and removes refresh/standby; both port the column-wise "
        "layout + ETM unchanged — supporting the paper's future-work claims."
    )
    return result


def ablation_segment_size() -> FigureResult:
    """ETM segment-size design study (the paper fixes 256).

    A segment must OR its latches within one DRAM row cycle (Table III
    measures 43.65 ns for 256 — just inside ~50 ns), while the segment
    count sets the worst-case SR flush and the Column Finder's BSR scan.
    """
    from ..hardware.components import TABLE_III
    from ..sieve.column_finder import ColumnFinder
    from ..sieve.etm import EtmPipeline

    row_bits = 8192
    row_cycle_ns = 50.0
    # Anchor on the paper's synthesized measurement (43.653 ns for 256
    # latches): the serial OR chain in a DRAM process is wire-dominated,
    # ~10x slower than a logic-process gate estimate, and scales
    # linearly with segment length.
    ns_per_latch = TABLE_III["t23_etm_segment"].latency_ns / 256.0
    result = FigureResult(
        figure="Ablation A7",
        title="ETM segment-size design space (8192-bit row buffer)",
        headers=[
            "segment_size",
            "segments",
            "segment_or_ns",
            "fits_row_cycle",
            "worst_flush_cycles",
            "cf_worst_cycles",
        ],
    )
    for size in (64, 128, 256, 512, 1024):
        etm = EtmPipeline(row_bits, size)
        cf = ColumnFinder(etm)
        or_ns = ns_per_latch * size
        result.rows.append(
            [
                size,
                etm.num_segments,
                or_ns,
                or_ns < row_cycle_ns,
                etm.num_segments,  # worst SR drain
                cf.worst_case_cycles(),
            ]
        )
    result.notes = (
        "256 latches/segment is the largest size whose OR settles within "
        "one row cycle while minimizing segment count (flush + BSR scan) "
        "— exactly the paper's choice."
    )
    return result


def ablation_device_sim(num_requests: int = 20_000) -> FigureResult:
    """Whole-device event simulation: PCIe packets -> banks -> RRQ."""
    result = FigureResult(
        figure="Ablation A6",
        title="Device-level event simulation (packets, queues, banks)",
        headers=[
            "banks",
            "overhead_pct_over_ideal",
            "load_imbalance",
            "packets",
            "makespan_us",
        ],
    )
    bank_counts = (4, 8, 16)
    payloads = run_jobs(
        [DeviceSimJob(banks=b, num_requests=num_requests) for b in bank_counts]
    )
    for banks, sim in zip(bank_counts, payloads):
        result.rows.append(
            [
                banks,
                sim["overhead_fraction"] * 100.0,
                sim["load_imbalance"],
                sim["packets"],
                sim["makespan_ns"] / 1e3,
            ]
        )
    result.notes = (
        "transfer/queueing overhead over zero-latency dispatch is ~1-3 %; "
        "adding the fixed driver/DMA overhead of repro.interconnect.pcie "
        "lands inside the paper's 4.6-6.7 % band; banks stay balanced "
        "(uniform sorted-index routing)."
    )
    return result


def ablation_type1_functional(queries: int = 120) -> FigureResult:
    """Cross-check the analytic Type-1 model's batch-pruning behaviour
    against the bit-accurate Type-1 bank simulator."""
    sim = run_jobs([Type1FunctionalJob(queries=queries)])[0]
    result = FigureResult(
        figure="Ablation A5",
        title="Type-1 functional counters (SkBR/StBR pruning)",
        headers=["quantity", "value"],
        rows=[
            ["queries", sim["queries"]],
            ["hit rate", sim["hit_rate"]],
            ["mean rows activated", sim["mean_rows"]],
            ["max rows (2k + payload)", sim["max_rows"]],
            ["mean batch reads", sim["mean_batch_reads"]],
            ["batch reads without SkBR", sim["full_batches"]],
            [
                "SkBR pruning factor",
                sim["full_batches"] / sim["mean_batch_reads"],
            ],
        ],
    )
    result.notes = (
        "the Skip-Bits Register eliminates most burst reads, the effect the "
        "analytic Type-1 model charges via its live-batch decay curve."
    )
    return result
