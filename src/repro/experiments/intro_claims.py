"""The paper's introduction, quantified.

Section I motivates Sieve with a precision-medicine scenario: a NovaSeq
run produces ~10 TB of sequence data in ~48 hours, and pushing it
through a Kraken-class metagenomics stage takes ~68 days of k-mer
matching — sequencing outruns analysis.  This runner reproduces that
arithmetic with the repository's models and shows what each Sieve
design does to the turnaround.
"""

from __future__ import annotations

from ..baselines.cpu_model import CpuBaselineModel
from ..baselines.gpu_model import GpuBaselineModel
from ..sieve.perfmodel import (
    EspModel,
    Type1Model,
    Type2Model,
    Type3Model,
    WorkloadStats,
)
from .results import FigureResult
from .workloads import PAPER_K

#: The intro's scenario constants.
NOVASEQ_SAMPLE_TB = 10.0
NOVASEQ_RUN_HOURS = 48.0
PAPER_KRAKEN_DAYS = 68.0

#: Bases per byte of FASTQ-ish raw data (sequence + header + qualities).
BASES_PER_BYTE = 0.45


def novaseq_kmer_count(k: int = PAPER_K) -> int:
    """k-mers in a 10 TB sample: every base starts a window (reads are
    long relative to k, so edge losses are ~20 %)."""
    bases = NOVASEQ_SAMPLE_TB * 1e12 * BASES_PER_BYTE
    return int(bases * 0.8)


def intro_claims() -> FigureResult:
    """Days to k-mer-match one NovaSeq sample, per engine."""
    num_kmers = novaseq_kmer_count()
    workload = WorkloadStats(
        name="NovaSeq-10TB",
        k=PAPER_K,
        num_kmers=num_kmers,
        hit_rate=0.01,
        esp=EspModel.paper_fig6(PAPER_K),
    )
    engines = {
        "CPU (Kraken-class)": CpuBaselineModel(),
        "GPU (cuCLARK-class)": GpuBaselineModel(),
        "Sieve Type-1": Type1Model(),
        "Sieve Type-2 (16CB)": Type2Model(compute_buffers_per_bank=16),
        "Sieve Type-3 (8SA)": Type3Model(concurrent_subarrays=8),
    }
    result = FigureResult(
        figure="Section I",
        title="K-mer matching one 10 TB NovaSeq sample",
        headers=["engine", "days", "vs_sequencing_time", "energy_kwh"],
    )
    seq_days = NOVASEQ_RUN_HOURS / 24.0
    for name, model in engines.items():
        res = model.run(workload)
        days = res.time_s / 86_400.0
        result.rows.append(
            [name, days, days / seq_days, res.energy_j / 3.6e6]
        )
    result.notes = (
        f"sample holds ~{num_kmers:.2g} k-mers.  The intro's "
        f"~{PAPER_KRAKEN_DAYS:.0f}-day figure reflects Kraken-1-era "
        "throughput and repeated pipeline passes; our calibrated 24-thread "
        "CPU still needs days — i.e. analysis lags the 2-day sequencing "
        "run (ratio > 1), the intro's point — while Sieve Type-3 keeps "
        "pace with the sequencer (ratio << 1) at ~80x less energy."
    )
    return result
