"""Motivation/methodology experiment runners (Figures 1 and 6,
Tables I-III, and the Section VI-A area numbers)."""

from __future__ import annotations

from dataclasses import asdict
from typing import Optional

import numpy as np

from ..analysis.breakdown import breakdown_for_workload
from ..analysis.esp import EspSummary, termination_from_device
from ..baselines.machines import TITAN_X_PASCAL, XEON_E5_2658V4
from ..genomics.synthetic import build_dataset
from ..hardware.area import DEFAULT_AREA_MODEL, PAPER_OVERHEADS
from ..hardware.components import table_iii_rows
from ..sieve.device import SieveDevice
from ..sieve.layout import SubarrayLayout
from .results import FigureResult
from .workloads import PAPER_K, table_ii_rows


def fig01_breakdown(num_kmers: int = 10_000_000) -> FigureResult:
    """Figure 1: execution-time breakdown of six bioinformatics tools."""
    result = FigureResult(
        figure="Figure 1",
        title="Execution-time breakdown (k-mer matching dominates)",
        headers=["tool", "total_s", "kmer_matching_pct", "largest_other_stage"],
    )
    for row in breakdown_for_workload(num_kmers):
        others = {
            stage: s
            for stage, s in row.stage_seconds.items()
            if stage != "K-mer Matching"
        }
        biggest = max(others.items(), key=lambda item: item[1])
        result.rows.append(
            [
                row.tool,
                row.total_s,
                row.kmer_fraction * 100.0,
                f"{biggest[0]} ({biggest[1] / row.total_s:.0%})",
            ]
        )
    result.notes = (
        "stage proportions digitized from paper Figure 1; absolute times "
        "from the mechanistic CPU lookup model."
    )
    return result


#: Functional-measurement scale for Figure 6 (kept modest: the
#: bit-accurate simulator runs every DRAM row activation in Python).
#: Mostly-novel reads with simBA-5-class errors reproduce the paper's
#: metagenomic sample statistics (~1 % hit rate).
FIG6_DEFAULTS = dict(
    k=PAPER_K,
    num_species=6,
    genome_length=1500,
    num_reads=60,
    read_length=100,
    error_rate=0.05,
    novel_fraction=0.9,
    seed=2021,
)


def measure_fig6(
    max_queries: int = 400, seed: Optional[int] = None
) -> EspSummary:
    """Measure ETM termination on the bit-accurate functional device.

    Builds a synthetic dataset, loads it into the simulator, and replays
    query k-mers, recording how many bits ETM compared before
    terminating each one (the max shared prefix over all candidates in
    the routed subarray).
    """
    params = dict(FIG6_DEFAULTS)
    if seed is not None:
        params["seed"] = seed
    dataset = build_dataset(**params)
    layout = SubarrayLayout(
        k=dataset.k, row_bits=1152, rows_per_subarray=256, layers=1
    )
    device = SieveDevice.from_database(dataset.database, layout=layout)
    queries = [kmer for _, kmer in dataset.query_kmers()][:max_queries]
    return termination_from_device(device, queries, dataset.k)


def measure_fig6_pairwise(max_queries: int = 4000, seed: Optional[int] = None):
    """The paper's Figure-6 histogram proper: per *comparison* first
    mismatch between a query and a reference k-mer.

    This is the statistic whose 96.9 %-within-5-bases / 0.17 %-full-scan
    anchors the paper publishes; see :func:`fig06_esp`'s notes for how it
    relates to the (longer) max-over-candidates termination the device
    actually observes.
    """
    from ..analysis.esp import routed_pairwise_first_mismatch

    params = dict(FIG6_DEFAULTS)
    if seed is not None:
        params["seed"] = seed
    dataset = build_dataset(**params)
    refs = dataset.database.sorted_kmers()
    queries = [kmer for _, kmer in dataset.query_kmers()]
    rng = np.random.default_rng(params["seed"])
    layout = SubarrayLayout(
        k=dataset.k, row_bits=1152, rows_per_subarray=256, layers=1
    )
    samples_per_query = max(1, max_queries // max(len(queries), 1) + 1)
    return routed_pairwise_first_mismatch(
        queries,
        refs,
        dataset.k,
        refs_per_subarray=layout.refs_per_layer,
        rng=rng,
        samples_per_query=samples_per_query,
    )


def fig06_esp(max_queries: int = 400) -> FigureResult:
    """Figure 6: first-mismatch characterization (functional measurement)."""
    pairwise = measure_fig6_pairwise()
    termination = measure_fig6(max_queries)
    hist = pairwise.histogram
    result = FigureResult(
        figure="Figure 6",
        title="First-mismatch bits between query and reference k-mers",
        headers=["bits", "comparisons", "fraction"],
    )
    shown = 0
    for bits in sorted(hist):
        if bits <= 14 or bits >= 2 * pairwise.k:
            result.rows.append([bits, hist[bits], hist[bits] / pairwise.samples])
            shown += hist[bits]
    result.notes = (
        f"pairwise (the paper's metric): {pairwise.within_five_bases:.1%} of "
        f"comparisons resolve within 5 bases (paper: 96.9 %), "
        f"{pairwise.full_scan_fraction:.2%} identical (paper: 0.17 %). "
        f"Device-level ETM termination — the max over all candidates in the "
        f"routed subarray, measured bit-accurately — averages "
        f"{termination.mean_bits:.1f} bits: sorted routing places queries "
        f"next to their longest-shared-prefix neighbours, which the "
        f"analytic model captures as an effective candidate count "
        f"(see EXPERIMENTS.md)."
    )
    return result


def tab01_machines() -> FigureResult:
    """Table I: baseline workstation configuration."""
    result = FigureResult(
        figure="Table I",
        title="Workstation configuration",
        headers=["field", "value"],
    )
    for key, value in asdict(XEON_E5_2658V4).items():
        result.rows.append([f"cpu.{key}", value])
    for key, value in asdict(TITAN_X_PASCAL).items():
        result.rows.append([f"gpu.{key}", value])
    return result


def tab02_queries() -> FigureResult:
    """Table II: query sequence summary (k-mer counts recomputed)."""
    result = FigureResult(
        figure="Table II",
        title="Query sequence summary",
        headers=["query_file", "sequences", "seq_length", "kmers"],
    )
    for row in table_ii_rows():
        result.rows.append(
            [row["query_file"], row["sequences"], row["seq_length"], row["kmers"]]
        )
    result.notes = (
        "k-mer counts computed as sequences x (length - k + 1); the "
        "paper's HiSeq rows are internally inconsistent and corrected here."
    )
    return result


def tab03_components() -> FigureResult:
    """Table III: per-component energy / static power / latency."""
    result = FigureResult(
        figure="Table III",
        title="Sieve component energy and latency",
        headers=["component", "dynamic_energy_pj", "static_power_uw", "latency_ns"],
    )
    for spec in table_iii_rows():
        result.rows.append(
            [spec.name, spec.dynamic_energy_pj, spec.static_power_uw, spec.latency_ns]
        )
    result.notes = "published FreePDK45->22 nm values (see repro.hardware)."
    return result


def area_overheads() -> FigureResult:
    """Section VI-A: area overheads of every design point."""
    model = DEFAULT_AREA_MODEL
    result = FigureResult(
        figure="Section VI-A",
        title="Area overheads (model vs. paper)",
        headers=["design", "model_pct", "paper_pct"],
    )
    rows = [
        ("Type-2, 1 CB", model.type2_overhead(1), PAPER_OVERHEADS["type2_1cb"]),
        ("Type-2, 64 CB", model.type2_overhead(64), PAPER_OVERHEADS["type2_64cb"]),
        ("Type-2, 128 CB", model.type2_overhead(128), PAPER_OVERHEADS["type2_128cb"]),
        ("Type-3", model.type3_overhead(), PAPER_OVERHEADS["type3"]),
        (
            "Type-1 (SRAM + matcher)",
            model.type1_overhead(),
            PAPER_OVERHEADS["type1_sram"] + PAPER_OVERHEADS["type1_matcher"],
        ),
    ]
    for name, mine, paper in rows:
        result.rows.append([name, mine * 100.0, paper * 100.0])
    return result


def esp_mean_rows(summary: EspSummary) -> float:
    """Convenience: mean ETM rows implied by a Figure-6 measurement."""
    return summary.to_esp_model().mean_rows()


def random_baseline_note(seed: int = 0) -> str:
    """One-line provenance string for benches that use RNG."""
    rng = np.random.default_rng(seed)
    return f"rng=PCG64(seed={seed}), first draw {rng.random():.6f}"
