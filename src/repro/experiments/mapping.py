"""Mapping-quality sweep: location recall vs seed length and fault rate.

The read-mapping pipeline (docs/MAPPING.md) exposes Sieve's central
trade-off as an end-to-end metric.  The seed length ``k`` controls the
filter's selectivity in both directions: shorter seeds survive more
sequencing errors per read window (more true locations found) but admit
more spurious candidates; longer seeds are more specific but a single
substitution kills ``k`` consecutive seeds.  DRAM bit flips corrupt the
filter itself — a flipped reference column makes a true seed silently
miss (lost candidate) or a wrong one hit (harmless: extension rejects
it) — so recall degrades with fault rate while *precision is defended
by the extend stage*, the seed-filter division of labour the PIM
read-mapping literature leans on.

Every read is a planted reference window, so recall here is exact
location recovery (right genome, right position), not a proxy.  The
zero-rate rows double as a live transparency check: with
``bit_flip_rate=0`` the injector must not flip a single bit.
"""

from __future__ import annotations

from typing import Tuple

from ..fleet.core import run_jobs
from ..fleet.jobs import MappingSweepJob
from .results import FigureResult

#: Seed lengths spanning sensitive-but-noisy to specific-but-brittle.
MAPPING_SEED_KS: Tuple[int, ...] = (8, 11, 14)

#: Bit-flip probabilities per loaded cell; the top rate is past the
#: fault sweep's to make filter-induced recall loss visible at this
#: reference size.
MAPPING_FAULT_RATES: Tuple[float, ...] = (0.0, 1e-3, 5e-3)


def mapping_sweep() -> FigureResult:
    """Location-recall table over (seed length x bit-flip rate)."""
    jobs = [
        MappingSweepJob(seed_k=seed_k, bit_flip_rate=rate)
        for rate in MAPPING_FAULT_RATES
        for seed_k in MAPPING_SEED_KS
    ]
    payloads = run_jobs(jobs)
    result = FigureResult(
        figure="Mapping sweep",
        title="Read-mapping location recall vs seed length and fault rate",
        headers=[
            "seed_k",
            "bit_flip_rate",
            "reads",
            "mapped",
            "correct_location",
            "recall",
            "mean_edit_distance",
            "seed_hits",
            "candidates",
            "bits_flipped",
        ],
    )
    for payload in payloads:
        result.rows.append(
            [
                payload["seed_k"],
                payload["bit_flip_rate"],
                payload["reads"],
                payload["mapped"],
                payload["correct_location"],
                payload["recall"],
                payload["mean_edit_distance"],
                payload["seed_hits"],
                payload["candidates"],
                payload["bits_flipped"],
            ]
        )
        if payload["bit_flip_rate"] <= 0.0 and payload["bits_flipped"]:
            raise AssertionError(
                f"zero-rate fault injection flipped "
                f"{payload['bits_flipped']} bits at seed_k="
                f"{payload['seed_k']}"
            )
    result.notes = (
        "Planted-read windows with substitution errors; recall is exact "
        "(genome, position) recovery through the Sieve filter + banded "
        "extension. Every seed_k at a given rate runs the identically-"
        "seeded fault schedule; the 0.0 rows prove injector transparency. "
        "seed_hits falls with both seed length and fault rate (each "
        "substitution or flipped reference column kills up to k seeds) "
        "while recall holds — overlapping seeds are redundant, so the "
        "extend stage recovers every location that keeps one live seed; "
        "recall below 1.0 is the band's edit budget, not the filter."
    )
    return result
