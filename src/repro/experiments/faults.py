"""Fault-injection sweep: answer accuracy vs. DRAM bit-flip rate.

The paper's designs share one failure surface — the reference image
lives in DRAM cells — but degrade differently when those cells flip:

* the **host database** loses whole records (a flipped key bit moves
  the record to the wrong sort position; a flipped payload bit answers
  with the wrong taxon);
* **Sieve** (Type-2/3 subarray) and **Type-1** lose the flipped bit's
  *column*: a reference with a flipped Region-1 bit silently stops
  matching its own k-mer (false miss) and may start matching a
  neighbouring one (false hit), while Region-2/3 flips corrupt the
  offset/payload fetch of an otherwise-correct match;
* the **row-major** baseline keeps payloads host-side, so only its
  match bits are exposed.

Every design at a given rate runs under the identically-seeded
:class:`~repro.faults.FaultModel` (the seed depends on the sweep tag
and the rate, never the design), so the table is an apples-to-apples
sensitivity comparison.  The zero-rate row doubles as a live no-op
check: with ``bit_flip_rate=0`` the injector must not change a single
answer, so accuracy is exactly 1.0.
"""

from __future__ import annotations

from typing import Tuple

from ..fleet.core import run_jobs
from ..fleet.jobs import FAULT_DESIGNS, FaultSweepJob
from .results import FigureResult

#: Bit-flip probabilities per loaded cell, spanning "weak cells exist"
#: to "device is badly out of spec".
FAULT_RATES: Tuple[float, ...] = (0.0, 1e-5, 1e-4, 1e-3)


def fault_sweep() -> FigureResult:
    """Accuracy-vs-fault-rate table across the functional designs."""
    jobs = [
        FaultSweepJob(design=design, bit_flip_rate=rate)
        for rate in FAULT_RATES
        for design in FAULT_DESIGNS
    ]
    payloads = run_jobs(jobs)
    result = FigureResult(
        figure="Fault sweep",
        title="Answer accuracy vs. DRAM bit-flip rate (seeded injection)",
        headers=[
            "design",
            "bit_flip_rate",
            "queries",
            "accuracy",
            "false_miss",
            "false_hit",
            "wrong_payload",
            "bits_flipped",
        ],
    )
    for payload in payloads:
        result.rows.append(
            [
                payload["design"],
                payload["bit_flip_rate"],
                payload["queries"],
                payload["accuracy"],
                payload["false_miss"],
                payload["false_hit"],
                payload["wrong_payload"],
                payload["bits_flipped"],
            ]
        )
        if payload["bit_flip_rate"] <= 0.0 and payload["accuracy"] < 1.0:
            raise AssertionError(
                f"zero-rate fault injection changed answers for "
                f"{payload['design']}: accuracy {payload['accuracy']}"
            )
    result.notes = (
        "Every design at a given rate runs under the identically-seeded "
        "fault schedule; the 0.0 row proves the injector is a no-op at "
        "zero rate."
    )
    return result
