"""Result container and text formatting for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class FigureResult:
    """One regenerated table/figure: headers + rows + provenance notes."""

    figure: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: str = ""

    def format(self) -> str:
        """Render as an aligned text table (what the benches print)."""
        def fmt(cell: object) -> str:
            if isinstance(cell, float):
                if cell.is_integer() and int(cell) == 0:
                    return "0"
                if abs(cell) >= 1000 or abs(cell) < 0.01:
                    return f"{cell:.3g}"
                return f"{cell:.2f}"
            return str(cell)

        table = [self.headers] + [[fmt(c) for c in row] for row in self.rows]
        widths = [max(len(r[i]) for r in table) for i in range(len(self.headers))]
        lines = [f"== {self.figure}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(table[0], widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in table[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def column(self, header: str) -> List[object]:
        """Extract one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the right average for speedup ratios)."""
    if not values:
        raise ValueError("geomean of empty sequence")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geomean requires positive values, got {v}")
        product *= v
    return product ** (1.0 / len(values))
