"""Per-figure experiment runners (paper Figures 13-17 and Section VI-C).

Each function regenerates one evaluation figure as a
:class:`~repro.experiments.results.FigureResult`: same rows/series the
paper plots, produced by the analytic Sieve models against the CPU/GPU
baselines.  The pytest-benchmark files under ``benchmarks/`` are thin
wrappers that call these runners and print the tables.

Every (design x workload x sweep point) evaluation is a
:class:`~repro.fleet.jobs.PerfPointJob` dispatched through
:func:`repro.fleet.core.run_jobs`, so figures parallelize across worker
processes (``--jobs``/``SIEVE_JOBS``) with byte-identical output at any
worker count; ratios and geomeans are folded in the parent in the same
order the sequential loops always used.
"""

from __future__ import annotations

from typing import Dict, List

from ..baselines.cpu_model import CpuBaselineModel
from ..baselines.gpu_model import GpuBaselineModel
from ..baselines.mlp import ideal_machine_analysis
from ..dram.geometry import SIEVE_4GB, SIEVE_8GB, SIEVE_16GB, SIEVE_32GB, DramGeometry
from ..fleet.core import run_jobs
from ..fleet.jobs import PerfPointJob
from ..hardware.area import DEFAULT_AREA_MODEL
from ..interconnect.dimm import DeploymentRequirement, recommend_interface
from ..interconnect.pcie import PCIE4_X16, PcieModel
from ..sieve.perfmodel import (
    PerfResult,
    SieveModelConfig,
    Type1Model,
    Type2Model,
    Type3Model,
    WorkloadStats,
)
from .results import FigureResult, geomean
from .workloads import Benchmark, gpu_benchmarks, paper_benchmarks

#: Paper's chosen configurations (Section VI-B): Type-2 midpoint of 16
#: compute buffers, Type-3 best performer at 8 concurrent subarrays.
T2_COMPUTE_BUFFERS = 16
T3_CONCURRENT_SUBARRAYS = 8


def _config(geometry: DramGeometry = SIEVE_32GB) -> SieveModelConfig:
    return SieveModelConfig(geometry=geometry)


def _grouped(
    benches: List[Benchmark],
    baseline: str,
    design_specs: List[tuple],
    hit_rate: float = -1.0,
) -> List[tuple]:
    """Run (baseline + designs) x benchmarks through the fleet.

    Returns one ``(bench, baseline_payload, [design_payload, ...])``
    tuple per benchmark, in benchmark order.
    """
    jobs: List[PerfPointJob] = []
    for bench in benches:
        jobs.append(
            PerfPointJob(design=baseline, benchmark=bench.name, hit_rate=hit_rate)
        )
        for _, spec in design_specs:
            jobs.append(
                PerfPointJob(benchmark=bench.name, hit_rate=hit_rate, **spec)
            )
    payloads = run_jobs(jobs)
    stride = 1 + len(design_specs)
    groups = []
    for i, bench in enumerate(benches):
        chunk = payloads[i * stride:(i + 1) * stride]
        groups.append((bench, chunk[0], chunk[1:]))
    return groups


def fig13_row_vs_col() -> FigureResult:
    """Figure 13: row-major vs ComputeDRAM vs col-major (no ETM) vs Sieve,
    speedup over the CPU baseline, all nine benchmarks."""
    design_specs = [
        ("Row_Major",
         dict(design="ROW_MAJOR", units=T3_CONCURRENT_SUBARRAYS)),
        ("Col_Major",
         dict(design="T3", units=T3_CONCURRENT_SUBARRAYS, etm_enabled=False)),
        ("ComputeDRAM",
         dict(design="COMPUTE_DRAM", units=T3_CONCURRENT_SUBARRAYS)),
        ("Sieve",
         dict(design="T3", units=T3_CONCURRENT_SUBARRAYS)),
    ]
    result = FigureResult(
        figure="Figure 13",
        title="Row-major in-situ vs. Sieve (speedup over CPU)",
        headers=["benchmark"] + [name for name, _ in design_specs],
    )
    etm_gains = []
    for bench, cpu_res, design_res in _grouped(
        paper_benchmarks(), "CPU", design_specs
    ):
        cpu_time = cpu_res["time_s"]
        row: List[object] = [bench.name]
        per_design = {}
        for (name, _), payload in zip(design_specs, design_res):
            speedup = cpu_time / payload["time_s"]
            per_design[name] = speedup
            row.append(speedup)
        etm_gains.append(per_design["Sieve"] / per_design["Col_Major"])
        result.rows.append(row)
    result.notes = (
        f"ETM contributes {min(etm_gains):.1f}x-{max(etm_gains):.1f}x over "
        "col-major without ETM (paper: 5.2x-7.2x); row-major/ComputeDRAM "
        "charged only the favorable TRA delay, as in the paper."
    )
    return result


#: The paper's three headline designs (Figures 14, 15).
_HEADLINE_DESIGNS = [
    ("T1", {"design": "T1"}),
    (f"T2.{T2_COMPUTE_BUFFERS}CB",
     {"design": "T2", "units": T2_COMPUTE_BUFFERS}),
    (f"T3.{T3_CONCURRENT_SUBARRAYS}SA",
     {"design": "T3", "units": T3_CONCURRENT_SUBARRAYS}),
]


def fig14_vs_cpu() -> FigureResult:
    """Figure 14: T1 / T2.16CB / T3.8SA speedup and energy saving over
    the CPU baseline, all nine benchmarks."""
    headers = ["benchmark"]
    for name, _ in _HEADLINE_DESIGNS:
        headers += [f"{name} speedup", f"{name} energy_saving"]
    result = FigureResult(
        figure="Figure 14",
        title="Sieve designs vs. CPU baseline",
        headers=headers,
    )
    per_design_speedups: Dict[str, List[float]] = {
        name: [] for name, _ in _HEADLINE_DESIGNS
    }
    for bench, base, design_res in _grouped(
        paper_benchmarks(), "CPU", _HEADLINE_DESIGNS
    ):
        row: List[object] = [bench.name]
        for (name, _), res in zip(_HEADLINE_DESIGNS, design_res):
            speedup = base["time_s"] / res["time_s"]
            saving = base["energy_j"] / res["energy_j"]
            per_design_speedups[name].append(speedup)
            row += [speedup, saving]
        result.rows.append(row)
    means = {
        name: geomean(vals) for name, vals in per_design_speedups.items()
    }
    result.notes = "geomean speedups: " + ", ".join(
        f"{name}={val:.1f}x" for name, val in means.items()
    )
    return result


def fig15_vs_gpu() -> FigureResult:
    """Figure 15: Sieve designs vs. the (idealized) GPU baseline on the
    three CLARK timing benchmarks."""
    headers = ["benchmark"]
    for name, _ in _HEADLINE_DESIGNS:
        headers += [f"{name} speedup", f"{name} energy_saving"]
    result = FigureResult(
        figure="Figure 15",
        title="Sieve designs vs. GPU baseline (CLARK benchmarks)",
        headers=headers,
    )
    for bench, base, design_res in _grouped(
        gpu_benchmarks(), "GPU", _HEADLINE_DESIGNS
    ):
        row: List[object] = [bench.name]
        for res in design_res:
            row += [base["time_s"] / res["time_s"],
                    base["energy_j"] / res["energy_j"]]
        result.rows.append(row)
    result.notes = (
        "T1 speedup < 1 reproduces the paper's 'Type-1 is 3x-5x slower "
        "than the GPU but more energy efficient'."
    )
    return result


#: Figure 16's capacity series.
FIG16_CAPACITIES = [
    ("T3.4GB", SIEVE_4GB),
    ("T3.8GB", SIEVE_8GB),
    ("T3.16GB", SIEVE_16GB),
    ("T3.32GB", SIEVE_32GB),
]

FIG16_SUBARRAYS = [1, 2, 4, 8, 16, 32, 64, 128]


def fig16_salp_sweep() -> FigureResult:
    """Figure 16: average device cycles vs. concurrent subarrays per
    bank, for Type-3 at four capacities.

    The paper plots millions of DRAM cycles averaged over the CPU
    benchmarks; we average over the six Kraken2 (accuracy-file)
    benchmarks, whose query counts match the paper's axis scale.
    """
    k2 = [b for b in paper_benchmarks() if b.kernel == "K2"]
    result = FigureResult(
        figure="Figure 16",
        title="Type-3 cycles vs. subarray-level parallelism",
        headers=["subarrays"] + [label for label, _ in FIG16_CAPACITIES],
    )
    jobs = [
        PerfPointJob(
            design="T3", benchmark=bench.name, units=sa,
            capacity_gib=geometry.capacity_gib,
        )
        for sa in FIG16_SUBARRAYS
        for _, geometry in FIG16_CAPACITIES
        for bench in k2
    ]
    payloads = iter(run_jobs(jobs))
    for sa in FIG16_SUBARRAYS:
        row: List[object] = [f"{sa}SA"]
        for _, geometry in FIG16_CAPACITIES:
            cfg = _config(geometry)
            cycles = [
                next(payloads)["time_s"] / (cfg.timing.tCK * 1e-9) for _ in k2
            ]
            row.append(sum(cycles) / len(cycles) / 1e6)
        result.rows.append(row)
    result.notes = (
        "columns are millions of DRAM I/O cycles, averaged over the six "
        "Kraken2 benchmarks; speedup plateaus once matching throughput "
        "meets the bank-I/O query-write floor (~8 subarrays)."
    )
    return result


#: Figure 17's compute-buffer sweep.
FIG17_CBS = [1, 2, 4, 8, 16, 32, 64, 128]


def fig17_cb_sweep() -> FigureResult:
    """Figure 17: Type-2 compute-buffer sweep, bracketed by Type-1 and
    Type-3 with one concurrent subarray: speedup, energy saving (both
    over CPU), and area overhead."""
    area = DEFAULT_AREA_MODEL
    benches = paper_benchmarks()
    entries: List[tuple] = [("T1", {"design": "T1"}, area.type1_overhead())]
    for cb in FIG17_CBS:
        entries.append(
            (f"T2.{cb}CB", {"design": "T2", "units": cb},
             area.type2_overhead(cb))
        )
    entries.append(
        ("T3.1SA", {"design": "T3", "units": 1}, area.type3_overhead())
    )
    result = FigureResult(
        figure="Figure 17",
        title="Type-2 compute-buffer design space",
        headers=["design", "speedup_vs_cpu", "energy_saving_vs_cpu", "area_overhead_pct"],
    )
    jobs = [PerfPointJob(design="CPU", benchmark=b.name) for b in benches]
    jobs += [
        PerfPointJob(benchmark=bench.name, **spec)
        for _, spec, _ in entries
        for bench in benches
    ]
    payloads = run_jobs(jobs)
    cpu_res = payloads[:len(benches)]
    design_res = iter(payloads[len(benches):])
    speedups = {}
    for name, _, overhead in entries:
        ratios_t = []
        ratios_e = []
        for base in cpu_res:
            res = next(design_res)
            ratios_t.append(base["time_s"] / res["time_s"])
            ratios_e.append(base["energy_j"] / res["energy_j"])
        speedups[name] = geomean(ratios_t)
        result.rows.append(
            [name, geomean(ratios_t), geomean(ratios_e), overhead * 100.0]
        )
    result.notes = (
        f"T2.1CB is {speedups['T2.1CB'] / speedups['T1']:.2f}x faster than "
        "T1 (paper: 1.39x-1.94x); T2.128CB trails T3.1SA by "
        f"{speedups['T3.1SA'] / speedups['T2.128CB']:.2f}x (paper: slight)."
    )
    return result


def sensitivity_etm_off() -> FigureResult:
    """Section VI-C ETM sensitivity: adversarial all-hit workloads with
    ETM disabled, Type-2/3 vs CPU and GPU."""
    design_specs = [
        (f"T2.{T2_COMPUTE_BUFFERS}CB",
         dict(design="T2", units=T2_COMPUTE_BUFFERS, etm_enabled=False)),
        (f"T3.{T3_CONCURRENT_SUBARRAYS}SA",
         dict(design="T3", units=T3_CONCURRENT_SUBARRAYS, etm_enabled=False)),
    ]
    result = FigureResult(
        figure="Section VI-C (ETM)",
        title="ETM off, every query hits (adversarial case)",
        headers=[
            "benchmark",
            "design",
            "speedup_vs_cpu",
            "energy_saving_vs_cpu",
            "speedup_vs_gpu",
            "energy_saving_vs_gpu",
        ],
    )
    benches = paper_benchmarks()
    jobs: List[PerfPointJob] = []
    for bench in benches:
        jobs.append(PerfPointJob(design="CPU", benchmark=bench.name, hit_rate=1.0))
        jobs.append(PerfPointJob(design="GPU", benchmark=bench.name, hit_rate=1.0))
        for _, spec in design_specs:
            jobs.append(PerfPointJob(benchmark=bench.name, hit_rate=1.0, **spec))
    payloads = iter(run_jobs(jobs))
    for bench in benches:
        cpu_res = next(payloads)
        gpu_res = next(payloads)
        for name, _ in design_specs:
            res = next(payloads)
            result.rows.append(
                [
                    bench.name,
                    name,
                    cpu_res["time_s"] / res["time_s"],
                    cpu_res["energy_j"] / res["energy_j"],
                    gpu_res["time_s"] / res["time_s"],
                    gpu_res["energy_j"] / res["energy_j"],
                ]
            )
    result.notes = (
        "paper band: still 1.34x-155x faster / 4.15x-36x more efficient "
        "than CPU and 1.3x-9.5x faster than GPU without ETM."
    )
    return result


def sensitivity_pcie() -> FigureResult:
    """Section VI-C PCIe overhead: fraction added to ideal dispatch."""
    cfg = _config()
    model = PcieModel(PCIE4_X16)
    result = FigureResult(
        figure="Section VI-C (PCIe)",
        title="PCIe 4.0 x16 communication overhead",
        headers=[
            "design",
            "device_qps",
            "link_utilization",
            "overhead_pct",
            "recommended_interface",
        ],
    )
    bench = paper_benchmarks()[-1]
    wl = bench.workload()
    payloads = run_jobs(
        [PerfPointJob(benchmark=bench.name, **spec) for _, spec in _HEADLINE_DESIGNS]
    )
    for (name, _), res in zip(_HEADLINE_DESIGNS, payloads):
        qps = wl.num_kmers / res["time_s"]
        summary = model.summary(qps)
        # Device power: dynamic + background + ~3 W interface controller.
        device_power_w = (
            res["breakdown"]["dynamic_j"] / res["time_s"]
            + res["breakdown"]["background_j"] / res["time_s"]
            + 3.0
        )
        req = DeploymentRequirement(
            device_qps=qps,
            power_w=device_power_w,
            capacity_gb=cfg.geometry.capacity_gib,
        )
        result.rows.append(
            [
                name,
                qps,
                summary["utilization"],
                summary["overhead_fraction"] * 100.0,
                recommend_interface(req),
            ]
        )
    result.notes = "paper: PCIe adds 4.6 %-6.7 % over ideal dispatch."
    return result


def sensitivity_bandwidth() -> FigureResult:
    """Section VI-B: added bandwidth does not rescue the CPU baseline."""
    bench = paper_benchmarks()[-1]
    wl = bench.workload()
    payload = run_jobs(
        [PerfPointJob(design="T3", benchmark=bench.name,
                      units=T3_CONCURRENT_SUBARRAYS)]
    )[0]
    qps = wl.num_kmers / payload["time_s"]
    analysis = ideal_machine_analysis(target_qps=qps)
    result = FigureResult(
        figure="Section VI-B",
        title="Why more DRAM bandwidth does not help the CPU",
        headers=["quantity", "value"],
        rows=[
            ["achieved bandwidth (MSHR-limited, GB/s)", analysis.achieved_bandwidth_gbs],
            ["peak bandwidth (GB/s)", analysis.peak_bandwidth_gbs],
            ["bandwidth utilization", analysis.bandwidth_utilization],
            ["ideal-machine per-core lookups/s", analysis.per_core_lookups_per_s],
            ["cores needed to match Type-3", analysis.cores_needed_to_match],
        ],
    )
    result.notes = (
        "paper: even with unbounded MSHRs and 40 ns loads, matching "
        "Type-3 needs a >215-core workstation."
    )
    return result


def perf_results_for(
    workload: WorkloadStats, geometry: DramGeometry = SIEVE_32GB
) -> Dict[str, PerfResult]:
    """All designs + baselines on one workload (CLI/report helper)."""
    cfg = _config(geometry)
    models = {
        "CPU": CpuBaselineModel(),
        "GPU": GpuBaselineModel(),
        "T1": Type1Model(cfg),
        f"T2.{T2_COMPUTE_BUFFERS}CB": Type2Model(cfg, T2_COMPUTE_BUFFERS),
        f"T3.{T3_CONCURRENT_SUBARRAYS}SA": Type3Model(cfg, T3_CONCURRENT_SUBARRAYS),
    }
    return {name: model.run(workload) for name, model in models.items()}
