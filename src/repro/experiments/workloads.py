"""The paper's nine evaluation benchmarks (Section V, Figures 13-15).

Benchmark naming follows the paper's ``kernel.query.size`` convention:
kernel is Kraken2 (``K2``) or CLARK (``C``), query files come from
Table II, and the reference database is MiniKraken 4 GB / 8 GB or the
NCBI bacterial genomes (6.24 GB).

Each benchmark reduces to a :class:`~repro.sieve.perfmodel.WorkloadStats`:
total k-mer count (from Table II at full scale), k-mer hit rate, and the
ETM termination distribution.  Hit rates are the calibrated dataset
statistics: the paper reports real datasets at ~1 % hit rate overall
and that C.MT.BG sees 3.28x the matches of C.ST.BG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..genomics.synthetic import TABLE_II_PROFILES, ReadProfile
from ..sieve.perfmodel import EspModel, WorkloadStats

#: k used throughout the paper's evaluation.
PAPER_K = 31


@dataclass(frozen=True)
class ReferenceDb:
    """A reference database used in the evaluation."""

    label: str
    size_gib: float

    @property
    def num_kmers(self) -> int:
        """Record count at ~12 B/record."""
        return int(self.size_gib * 2**30 / 12)


MINIKRAKEN_4GB = ReferenceDb("4", 4.0)
MINIKRAKEN_8GB = ReferenceDb("8", 8.0)
NCBI_BACTERIA = ReferenceDb("BG", 6.24)


@dataclass(frozen=True)
class Benchmark:
    """One paper benchmark: kernel + query file + reference database."""

    kernel: str  # "K2" or "C"
    profile: ReadProfile
    database: ReferenceDb
    hit_rate: float

    @property
    def name(self) -> str:
        return f"{self.kernel}.{self.profile.name}.{self.database.label}"

    def workload(self, k: int = PAPER_K) -> WorkloadStats:
        return WorkloadStats(
            name=self.name,
            k=k,
            num_kmers=self.profile.kmer_count(k),
            hit_rate=self.hit_rate,
            esp=EspModel.paper_fig6(
                k, head_prob=ESP_HEAD_PROB.get(self.profile.name, 0.969)
            ),
        )


#: Calibrated per-query-file hit rates.  simBA-5's 5 % error rate breaks
#: most of its k-mers (one substitution kills up to k overlapping
#: k-mers), so ST sits at ~1 %; the paper reports MT matches 3.28x more
#: k-mers than ST; the Illumina accuracy files land in between.
HIT_RATES: Dict[str, float] = {
    "HA": 0.020,
    "MA": 0.025,
    "SA": 0.012,
    "HT": 0.015,
    "MT": 0.0328,
    "ST": 0.010,
}

#: Per-query-file ETM head probability (fraction of queries terminating
#: within 5 bases, paper Figure 6 measures 96.9 % on its FASTQ input).
#: Error-free Illumina reads share longer prefixes with near-miss
#: references than the heavily mutated simBA-5 reads do.
ESP_HEAD_PROB: Dict[str, float] = {
    "HA": 0.955,
    "MA": 0.948,
    "SA": 0.982,
    "HT": 0.962,
    "MT": 0.940,
    "ST": 0.975,
}


def paper_benchmarks() -> List[Benchmark]:
    """The nine Figure 13/14 benchmarks, in the paper's X-axis order."""
    k2 = [
        Benchmark("K2", TABLE_II_PROFILES[q], db, HIT_RATES[q])
        for db in (MINIKRAKEN_4GB, MINIKRAKEN_8GB)
        for q in ("HA", "MA", "SA")
    ]
    clark = [
        Benchmark("C", TABLE_II_PROFILES[q], NCBI_BACTERIA, HIT_RATES[q])
        for q in ("HT", "MT", "ST")
    ]
    return k2 + clark


def gpu_benchmarks() -> List[Benchmark]:
    """The three Figure 15 benchmarks (CLARK timing sets)."""
    return [b for b in paper_benchmarks() if b.kernel == "C"]


def benchmark_by_name(name: str) -> Benchmark:
    """Lookup helper for the CLI."""
    for bench in paper_benchmarks():
        if bench.name == name:
            return bench
    raise KeyError(f"unknown benchmark {name!r}")


def table_ii_rows(k: int = PAPER_K) -> List[Dict[str, object]]:
    """Paper Table II regenerated from the profiles (computed k-mer
    counts; see the profile docstring for the two typo'd rows)."""
    rows = []
    for profile in TABLE_II_PROFILES.values():
        rows.append(
            {
                "query_file": profile.description,
                "sequences": profile.num_sequences,
                "seq_length": profile.read_length,
                "kmers": profile.kmer_count(k),
            }
        )
    return rows
