"""End-to-end deployment pipeline model (paper Section V, "Modeling
Sieve").

The paper deploys Sieve as a three-stage pipeline:

* **pre-processing** on the host — read parsing, k-mer generation,
  driver invocation, PCIe DMA;
* **k-mer matching** on the device (or on the CPU/GPU baselines);
* **post-processing** on the host — payload accumulation per read,
  classification.

The stages overlap, so sustained throughput is the minimum stage rate,
and the paper's claim — "the latency of this pipeline is limited by
k-mer processing on Sieve ... so the CPU is always able to send enough
k-mer requests to Sieve to keep it fully utilized" — becomes a checkable
statement about stage rates.  This module models it and identifies the
bottleneck for any engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .baselines.machines import XEON_E5_2658V4, CpuConfig
from .sieve.perfmodel import PerfResult, WorkloadStats


class PipelineError(ValueError):
    """Raised on invalid pipeline parameters."""


@dataclass(frozen=True)
class HostStageModel:
    """Host-side per-k-mer costs, per hardware thread.

    Pre-processing slides a window over the read (a few ALU ops plus a
    12-byte request write); post-processing bumps one counter per hit
    and aggregates per read.  Both stream sequentially — unlike
    matching, they are cache-friendly.
    """

    preprocess_ns_per_kmer: float = 10.0
    postprocess_ns_per_kmer: float = 4.0
    config: CpuConfig = XEON_E5_2658V4

    def __post_init__(self) -> None:
        if self.preprocess_ns_per_kmer <= 0 or self.postprocess_ns_per_kmer <= 0:
            raise PipelineError("stage costs must be positive")

    def preprocess_qps(self) -> float:
        return self.config.threads / (self.preprocess_ns_per_kmer * 1e-9)

    def postprocess_qps(self) -> float:
        return self.config.threads / (self.postprocess_ns_per_kmer * 1e-9)


@dataclass(frozen=True)
class PipelineReport:
    """Stage rates and the identified bottleneck."""

    stage_qps: Dict[str, float]
    bottleneck: str
    sustained_qps: float
    matching_utilization: float

    @property
    def matching_bound(self) -> bool:
        return self.bottleneck == "matching"


def analyze_observed_pipeline(
    matching_qps: float,
    host: Optional[HostStageModel] = None,
) -> PipelineReport:
    """Bottleneck analysis from an *observed* matching rate.

    The analytic path derives the matching rate from a model's
    :class:`PerfResult`; this entry point takes a measured one instead
    — e.g. the simulated-time throughput ``repro.service`` reports for
    the traffic it actually served — and runs the identical stage
    comparison, so deployment measurements and model projections are
    judged by one bottleneck rule.
    """
    if matching_qps <= 0:
        raise PipelineError("matching_qps must be positive")
    host = host or HostStageModel()
    stage_qps = {
        "preprocess": host.preprocess_qps(),
        "matching": matching_qps,
        "postprocess": host.postprocess_qps(),
    }
    bottleneck = min(stage_qps, key=stage_qps.get)
    sustained = stage_qps[bottleneck]
    return PipelineReport(
        stage_qps=stage_qps,
        bottleneck=bottleneck,
        sustained_qps=sustained,
        matching_utilization=min(1.0, sustained / matching_qps),
    )


def analyze_pipeline(
    matching: PerfResult,
    workload: WorkloadStats,
    host: Optional[HostStageModel] = None,
) -> PipelineReport:
    """Bottleneck analysis for one matching engine on one workload."""
    return analyze_observed_pipeline(
        workload.num_kmers / matching.time_s, host
    )


def pipeline_table(
    results: Dict[str, PerfResult],
    workload: WorkloadStats,
    host: Optional[HostStageModel] = None,
) -> List[Dict[str, object]]:
    """Bottleneck analysis across engines (harness/report helper)."""
    rows = []
    for name, result in results.items():
        report = analyze_pipeline(result, workload, host)
        rows.append(
            {
                "engine": name,
                "matching_qps": report.stage_qps["matching"],
                "bottleneck": report.bottleneck,
                "sustained_qps": report.sustained_qps,
                "matching_utilization": report.matching_utilization,
            }
        )
    return rows
