"""DRAM organization: device -> rank -> bank -> subarray -> row -> column.

The paper's operating points (Section IV-V): 8192-bit rows, 512-row
subarrays, 8 banks per rank, and devices from 4 GB to 500 GB built by
adding ranks/subarrays.  Sieve's throughput scales with the number of
independently activatable units, so the geometry is the primary lever of
its "memory-capacity-proportional performance".
"""

from __future__ import annotations

from dataclasses import dataclass


class GeometryError(ValueError):
    """Raised on invalid or inconsistent geometry."""


@dataclass(frozen=True)
class DramGeometry:
    """Physical organization of a Sieve DRAM device.

    Defaults follow the paper: 8192-bit rows, 512 rows per subarray,
    8 banks per rank, 64-bit bank I/O, 8-byte prefetch.
    """

    ranks: int = 2
    banks_per_rank: int = 8
    subarrays_per_bank: int = 64
    rows_per_subarray: int = 512
    row_bits: int = 8192
    bank_io_bits: int = 64
    prefetch_bytes: int = 8

    def __post_init__(self) -> None:
        for name in (
            "ranks",
            "banks_per_rank",
            "subarrays_per_bank",
            "rows_per_subarray",
            "row_bits",
            "bank_io_bits",
            "prefetch_bytes",
        ):
            if getattr(self, name) <= 0:
                raise GeometryError(f"{name} must be positive")
        if self.row_bits % self.bank_io_bits:
            raise GeometryError("row_bits must be a multiple of bank_io_bits")

    @property
    def total_banks(self) -> int:
        return self.ranks * self.banks_per_rank

    @property
    def total_subarrays(self) -> int:
        return self.total_banks * self.subarrays_per_bank

    @property
    def subarray_bits(self) -> int:
        return self.rows_per_subarray * self.row_bits

    @property
    def capacity_bits(self) -> int:
        return self.total_subarrays * self.subarray_bits

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_bits // 8

    @property
    def capacity_gib(self) -> float:
        return self.capacity_bytes / 2**30

    @property
    def batches_per_row(self) -> int:
        """Type-1 batches: bursts needed to stream one row over bank I/O."""
        return self.row_bits // self.bank_io_bits

    def __str__(self) -> str:
        return (
            f"{self.capacity_gib:.1f} GiB: {self.ranks} ranks x "
            f"{self.banks_per_rank} banks x {self.subarrays_per_bank} "
            f"subarrays x {self.rows_per_subarray} rows x {self.row_bits} bits"
        )

    @classmethod
    def for_capacity(
        cls,
        capacity_gib: float,
        ranks: int = 16,
        banks_per_rank: int = 8,
        rows_per_subarray: int = 2048,
        row_bits: int = 8192,
    ) -> "DramGeometry":
        """Build a geometry of the requested capacity by sizing subarrays.

        Mirrors how the paper scales Sieve devices (more subarrays per
        bank at fixed rank/bank counts).  Raises when the capacity is not
        expressible as a whole number of subarrays per bank.
        """
        capacity_bits = int(capacity_gib * 2**33)
        per_bank_bits = capacity_bits // (ranks * banks_per_rank)
        subarray_bits = rows_per_subarray * row_bits
        if per_bank_bits % subarray_bits:
            raise GeometryError(
                f"capacity {capacity_gib} GiB is not a whole number of "
                f"{subarray_bits}-bit subarrays across {ranks * banks_per_rank} banks"
            )
        return cls(
            ranks=ranks,
            banks_per_rank=banks_per_rank,
            subarrays_per_bank=per_bank_bits // subarray_bits,
            rows_per_subarray=rows_per_subarray,
            row_bits=row_bits,
        )


#: The paper's 32 GB evaluation device: 16 ranks x 8 banks (Section IV-C),
#: 128 subarrays per bank (the paper's Type-2 discussion relays rows
#: across up to 128 subarrays), 2048-row subarrays.
SIEVE_32GB = DramGeometry.for_capacity(32.0)

#: Smaller devices for the Figure 16 capacity sweep (fewer ranks, same
#: per-bank organization, as DIMM-count scaling would give).
SIEVE_4GB = DramGeometry.for_capacity(4.0, ranks=2)
SIEVE_8GB = DramGeometry.for_capacity(8.0, ranks=4)
SIEVE_16GB = DramGeometry.for_capacity(16.0, ranks=8)
