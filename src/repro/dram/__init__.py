"""DRAM substrate: timing, geometry, energy, behavioral arrays, and
command accounting.

Everything the Sieve models and the in-situ baselines need from DRAM:
datasheet timing presets (the paper's DDR3 example part and the DDR4
building block), a geometry type that scales devices from 4 GB to
500 GB, Micron-TN-40-07-style energy arithmetic, a bit-accurate
behavioral subarray/bank model for functional simulation, and the
:class:`CommandLedger` that converts command counts into latency and
energy for the trace-driven performance model.
"""

from .commands import Command, CommandLedger
from .energy import (
    DDR4_ENERGY,
    EXTRA_WORDLINE_FACTOR,
    SIEVE_ACTIVATION_OVERHEAD,
    DramEnergy,
    EnergyError,
)
from .geometry import (
    SIEVE_4GB,
    SIEVE_8GB,
    SIEVE_16GB,
    SIEVE_32GB,
    DramGeometry,
    GeometryError,
)
from .memsys import (
    MemorySystem,
    MemSysConfig,
    MemSysError,
    MemSysStats,
    replay_lookup_traces,
)
from .subarray import Bank, DramStateError, Subarray, SubarrayStats
from .timing import DDR3_1600, DDR4_2400, SIEVE_TIMING, DramTiming, TimingError

__all__ = [
    "Command",
    "CommandLedger",
    "DDR4_ENERGY",
    "EXTRA_WORDLINE_FACTOR",
    "SIEVE_ACTIVATION_OVERHEAD",
    "DramEnergy",
    "EnergyError",
    "SIEVE_4GB",
    "SIEVE_8GB",
    "SIEVE_16GB",
    "SIEVE_32GB",
    "DramGeometry",
    "GeometryError",
    "MemorySystem",
    "MemSysConfig",
    "MemSysError",
    "MemSysStats",
    "replay_lookup_traces",
    "Bank",
    "DramStateError",
    "Subarray",
    "SubarrayStats",
    "DDR3_1600",
    "DDR4_2400",
    "SIEVE_TIMING",
    "DramTiming",
    "TimingError",
]
