"""DRAM command accounting: the currency of the trace-driven simulator.

Every accelerator model in this repository (Sieve Types 1-3, Ambit-style
row-major, ComputeDRAM-style) expresses its work as counts of DRAM-level
events — activations, precharges, bursts, hops, custom-logic cycles —
accumulated in a :class:`CommandLedger`.  The ledger converts those
counts into nanoseconds and nanojoules using a :class:`DramTiming` and a
:class:`DramEnergy`, which is exactly how the paper's in-house
DRAMSim2-front-end simulator produces its numbers.

Latency accounting is *per independent unit*: callers accumulate
serialized time on the unit that did the work, and the device-level
models combine units (banks/subarrays) with their own parallelism rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from . import hooks
from .energy import DramEnergy
from .timing import DramTiming


class Command(enum.Enum):
    """DRAM-level events the simulators account for."""

    ACTIVATE = "activate"  # single-row activation (+ implied precharge)
    MULTI_ACTIVATE = "multi_activate"  # Ambit/ComputeDRAM triple-row act
    READ_BURST = "read_burst"  # column read burst (Type-1 batches)
    WRITE_BURST = "write_burst"  # column write burst (query replication)
    HOP = "hop"  # Type-2 inter-subarray row relay
    LOGIC_CYCLE = "logic_cycle"  # matcher/ETM/CF cycles on critical path
    ROW_CLONE = "row_clone"  # in-bank row copy (Ambit setup)


@dataclass
class CommandLedger:
    """Accumulated command counts plus derived latency/energy.

    ``serial_time_ns`` is time on the critical path of the unit that
    owns this ledger; energy is additive across the device.
    """

    timing: DramTiming
    energy: DramEnergy
    counts: Dict[Command, int] = field(default_factory=dict)
    serial_time_ns: float = 0.0
    energy_nj: float = 0.0
    #: Extra per-activation energy factor (Sieve matcher rows: +6 %).
    activation_energy_factor: float = 1.0
    #: ns of custom logic per LOGIC_CYCLE (one DRAM I/O clock by default).
    logic_cycle_ns: float = 0.0
    #: nJ per LOGIC_CYCLE event.
    logic_cycle_nj: float = 0.0
    #: ns per HOP event (Type-2 relay; ~tRAS/8 per the SPICE result).
    hop_ns: float = 0.0
    #: nJ per HOP event (relay sense-amplifier activation energy).
    hop_nj: float = 0.0

    def __post_init__(self) -> None:
        # Unset-or-nonsense sentinel, not exact-zero: these are "use the
        # timing-derived default" knobs, so any non-positive value means
        # "not configured".
        if self.logic_cycle_ns <= 0.0:
            self.logic_cycle_ns = self.timing.tCK
        if self.hop_ns <= 0.0:
            self.hop_ns = self.timing.tRAS / 8.0

    def record(self, command: Command, count: int = 1, rows: int = 1) -> None:
        """Record ``count`` events; ``rows`` applies to MULTI_ACTIVATE."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        self.counts[command] = self.counts.get(command, 0) + count
        if command is Command.ACTIVATE:
            self.serial_time_ns += count * self.timing.row_cycle
            self.energy_nj += (
                count
                * self.energy.activation_energy_nj(self.timing)
                * self.activation_energy_factor
            )
        elif command is Command.MULTI_ACTIVATE:
            self.serial_time_ns += count * self.timing.triple_row_activation
            self.energy_nj += count * self.energy.multi_row_activation_energy_nj(
                self.timing, rows
            )
        elif command is Command.READ_BURST:
            self.serial_time_ns += count * self.timing.tCCD
            self.energy_nj += count * self.energy.read_burst_energy_nj(self.timing)
        elif command is Command.WRITE_BURST:
            self.serial_time_ns += count * self.timing.tCCD
            self.energy_nj += count * self.energy.write_burst_energy_nj(self.timing)
        elif command is Command.HOP:
            self.serial_time_ns += count * self.hop_ns
            self.energy_nj += count * self.hop_nj
        elif command is Command.LOGIC_CYCLE:
            self.serial_time_ns += count * self.logic_cycle_ns
            self.energy_nj += count * self.logic_cycle_nj
        elif command is Command.ROW_CLONE:
            # RowClone-style in-bank copy: two back-to-back activations.
            self.serial_time_ns += count * (self.timing.tRAS + self.timing.row_cycle)
            self.energy_nj += (
                count * 2 * self.energy.activation_energy_nj(self.timing)
            )
        else:  # pragma: no cover - exhaustive over enum
            raise ValueError(f"unknown command {command}")
        observer = hooks.OBSERVER
        if observer is not None:
            observer.on_ledger_record(self, command, count)

    def add_time(self, ns: float) -> None:
        """Charge raw critical-path time (e.g. ETM flush stalls)."""
        if ns < 0:
            raise ValueError(f"time must be non-negative, got {ns}")
        self.serial_time_ns += ns
        observer = hooks.OBSERVER
        if observer is not None:
            observer.on_ledger_time(self, ns)

    def add_energy(self, nj: float) -> None:
        """Charge raw energy (e.g. per-component dynamic energy)."""
        if nj < 0:
            raise ValueError(f"energy must be non-negative, got {nj}")
        self.energy_nj += nj
        observer = hooks.OBSERVER
        if observer is not None:
            observer.on_ledger_energy(self, nj)

    def count(self, command: Command) -> int:
        """Total events of one command type."""
        return self.counts.get(command, 0)

    def merge(self, other: "CommandLedger", parallel: bool) -> None:
        """Fold another ledger in.

        Energy always adds.  Time adds when ``parallel`` is False
        (serialized units) or takes the max when True (units operating
        concurrently).
        """
        for command, count in other.counts.items():
            self.counts[command] = self.counts.get(command, 0) + count
        self.energy_nj += other.energy_nj
        if parallel:
            self.serial_time_ns = max(self.serial_time_ns, other.serial_time_ns)
        else:
            self.serial_time_ns += other.serial_time_ns
        observer = hooks.OBSERVER
        if observer is not None:
            observer.on_ledger_merge(self, other, parallel)
