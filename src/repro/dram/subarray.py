"""Behavioral model of a DRAM subarray (bit cells + local row buffer).

This is the functional substrate the bit-accurate Sieve models are built
on: a subarray stores a ``rows x cols`` bit matrix, a row can be
*activated* (latched into the local row buffer / sense amplifiers), read
out, written, and precharged.  Activation counts are tracked so
functional runs can be converted into latency/energy with the timing and
energy models.

Only one row may be open at a time (single-row activation is the core of
Sieve's design argument, Section III); multi-row activation is modelled
separately in :mod:`repro.insitu` for the Ambit/ComputeDRAM baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from . import hooks


class DramStateError(RuntimeError):
    """Raised on protocol violations (e.g. reading a closed row)."""


@dataclass
class SubarrayStats:
    """Counters accumulated by one subarray."""

    activations: int = 0
    precharges: int = 0
    row_reads: int = 0
    row_writes: int = 0


class Subarray:
    """A DRAM subarray: bit cells plus a local row buffer."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError(f"subarray must have positive dims, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self._cells = np.zeros((rows, cols), dtype=np.uint8)
        self._open_row: Optional[int] = None
        self._row_buffer = np.zeros(cols, dtype=np.uint8)
        self.stats = SubarrayStats()

    @property
    def open_row(self) -> Optional[int]:
        """Index of the currently open row, or ``None`` when precharged."""
        return self._open_row

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")

    def activate(self, row: int) -> np.ndarray:
        """Open ``row``: latch its bits into the local row buffer.

        Returns a read-only view of the row buffer (what the matchers
        see).  Activating while another row is open is a protocol
        violation — a real DRAM requires a precharge first.
        """
        self._check_row(row)
        if self._open_row is not None and self._open_row != row:
            raise DramStateError(
                f"row {self._open_row} is open; precharge before activating {row}"
            )
        if self._open_row is None:
            self.stats.activations += 1
        self._open_row = row
        self._row_buffer[:] = self._cells[row]
        view = self._row_buffer.view()
        view.flags.writeable = False
        return view

    def precharge(self) -> None:
        """Close the open row (idempotent, as PRE to an idle bank is)."""
        if self._open_row is not None:
            # Restore: DRAM reads are destructive; writeback happens here.
            self._cells[self._open_row] = self._row_buffer
            self.stats.precharges += 1
        self._open_row = None

    def read_row_buffer(self) -> np.ndarray:
        """Return a copy of the open row's bits."""
        if self._open_row is None:
            raise DramStateError("no row is open")
        self.stats.row_reads += 1
        return self._row_buffer.copy()

    def write_row_buffer(self, bits: np.ndarray) -> None:
        """Overwrite the open row through the row buffer."""
        if self._open_row is None:
            raise DramStateError("no row is open")
        if bits.shape != (self.cols,):
            raise ValueError(f"expected {self.cols} bits, got shape {bits.shape}")
        self._row_buffer[:] = bits % 2
        self.stats.row_writes += 1

    def load_row(self, row: int, bits: np.ndarray) -> None:
        """Directly install row contents (database load path, not timed).

        When a fault injector is installed it may corrupt the stored
        bits (weak cells invert writes, stuck-at cells pin them) — the
        persistent-cell-fault seam of :mod:`repro.faults`.
        """
        self._check_row(row)
        if bits.shape != (self.cols,):
            raise ValueError(f"expected {self.cols} bits, got shape {bits.shape}")
        injector = hooks.INJECTOR
        if injector is not None:
            bits = injector.on_subarray_load(self, row, 0, bits)
        self._cells[row] = bits % 2

    def load_bits(self, row: int, col_start: int, bits: np.ndarray) -> None:
        """Install a partial row starting at ``col_start`` (load path)."""
        self._check_row(row)
        if col_start < 0 or col_start + len(bits) > self.cols:
            raise IndexError(
                f"bits [{col_start}, {col_start + len(bits)}) out of range "
                f"[0, {self.cols})"
            )
        injector = hooks.INJECTOR
        if injector is not None:
            bits = injector.on_subarray_load(self, row, col_start, bits)
        self._cells[row, col_start : col_start + len(bits)] = bits % 2

    def peek(self, row: int, col: int) -> int:
        """Read one stored bit without any timing effect (debug/tests)."""
        self._check_row(row)
        if not 0 <= col < self.cols:
            raise IndexError(f"col {col} out of range [0, {self.cols})")
        return int(self._cells[row, col])

    def peek_rows(self, start: int, stop: int) -> np.ndarray:
        """Read-only view of rows ``[start, stop)`` without timing effect.

        This is the bulk analogue of :meth:`peek` for vectorized model
        paths that account activations analytically; it never touches the
        row buffer or the open-row state.
        """
        self._check_row(start)
        if not start < stop <= self.rows:
            raise IndexError(
                f"rows [{start}, {stop}) out of range [0, {self.rows})"
            )
        view = self._cells[start:stop].view()
        view.flags.writeable = False
        return view

    def charge_untimed_accesses(self, activations: int) -> None:
        """Account ``activations`` ACT/PRE pairs executed analytically.

        The batched match path computes its row activations in one
        vectorized pass instead of replaying them; this keeps the
        subarray's counters identical to a command-by-command replay.
        """
        if activations < 0:
            raise ValueError(f"activations must be >= 0, got {activations}")
        self.stats.activations += activations
        self.stats.precharges += activations


@dataclass
class Bank:
    """A DRAM bank: an ordered collection of subarrays.

    Global row addresses map to (subarray, local row) top-down, matching
    the paper's Figure 7 where subarray 0 is closest to the bank I/O in
    Type-1 and the compute buffer sits at the bottom of each subarray
    group in Type-2.
    """

    subarrays_per_bank: int
    rows_per_subarray: int
    row_bits: int
    subarrays: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.subarrays:
            self.subarrays = [
                Subarray(self.rows_per_subarray, self.row_bits)
                for _ in range(self.subarrays_per_bank)
            ]

    @property
    def total_rows(self) -> int:
        return self.subarrays_per_bank * self.rows_per_subarray

    def locate(self, global_row: int) -> tuple:
        """Split a bank-global row address into (subarray idx, local row)."""
        if not 0 <= global_row < self.total_rows:
            raise IndexError(
                f"row {global_row} out of range [0, {self.total_rows})"
            )
        return divmod(global_row, self.rows_per_subarray)

    def activate(self, global_row: int) -> np.ndarray:
        """Activate a bank-global row (opens it in its subarray)."""
        idx, local = self.locate(global_row)
        return self.subarrays[idx].activate(local)

    def precharge_all(self) -> None:
        """Precharge every subarray in the bank."""
        for sub in self.subarrays:
            sub.precharge()
