"""Observer seam for runtime instrumentation of the DRAM layer.

:mod:`repro.analysiskit` installs a :class:`ProtocolSanitizer` here to
validate command-stream invariants while the trace-driven models run
(see ``docs/CORRECTNESS.md``).  The seam is kept dependency-free so
``repro.dram`` never imports the tooling that observes it.

Hot paths check a single module-level reference and skip everything
when no observer is installed (the default), so an idle seam costs one
attribute load and a ``None`` test per event.
"""

from __future__ import annotations

from typing import Any, Optional

#: The installed observer, or ``None`` (the default: no instrumentation).
OBSERVER: Optional[Any] = None


def install(observer: Any) -> None:
    """Install ``observer`` as the single active DRAM-event observer.

    The observer is duck-typed; it may implement any subset of:

    * ``on_ledger_record(ledger, command, count)`` — after a
      :class:`~repro.dram.commands.CommandLedger` records events,
    * ``on_ledger_time(ledger, ns)`` / ``on_ledger_energy(ledger, nj)``
      — after raw time/energy charges,
    * ``on_ledger_merge(ledger, other, parallel)`` — after a merge,
    * ``on_memsys_access(system, bank, row, kind, latency_ns)`` — after
      a :class:`~repro.dram.memsys.MemorySystem` replays one access
      (``kind`` is ``"hit"``/``"miss"``/``"conflict"``).
    """
    global OBSERVER
    OBSERVER = observer


def uninstall() -> None:
    """Remove the active observer (instrumentation off)."""
    global OBSERVER
    OBSERVER = None


def get_observer() -> Optional[Any]:
    """Return the active observer, or ``None``."""
    return OBSERVER
