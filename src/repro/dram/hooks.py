"""Observer seam for runtime instrumentation of the DRAM layer.

:mod:`repro.analysiskit` installs a :class:`ProtocolSanitizer` here to
validate command-stream invariants while the trace-driven models run
(see ``docs/CORRECTNESS.md``).  The seam is kept dependency-free so
``repro.dram`` never imports the tooling that observes it.

Hot paths check a single module-level reference and skip everything
when no observer is installed (the default), so an idle seam costs one
attribute load and a ``None`` test per event.
"""

from __future__ import annotations

from typing import Any, Optional

#: The installed observer, or ``None`` (the default: no instrumentation).
OBSERVER: Optional[Any] = None

#: The installed fault injector, or ``None`` (the default: pristine DRAM).
INJECTOR: Optional[Any] = None


def install(observer: Any) -> None:
    """Install ``observer`` as the single active DRAM-event observer.

    The observer is duck-typed; it may implement any subset of:

    * ``on_ledger_record(ledger, command, count)`` — after a
      :class:`~repro.dram.commands.CommandLedger` records events,
    * ``on_ledger_time(ledger, ns)`` / ``on_ledger_energy(ledger, nj)``
      — after raw time/energy charges,
    * ``on_ledger_merge(ledger, other, parallel)`` — after a merge,
    * ``on_memsys_access(system, bank, row, kind, latency_ns)`` — after
      a :class:`~repro.dram.memsys.MemorySystem` replays one access
      (``kind`` is ``"hit"``/``"miss"``/``"conflict"``).
    """
    global OBSERVER
    OBSERVER = observer


def uninstall() -> None:
    """Remove the active observer (instrumentation off)."""
    global OBSERVER
    OBSERVER = None


def get_observer() -> Optional[Any]:
    """Return the active observer, or ``None``."""
    return OBSERVER


def install_injector(injector: Any) -> None:
    """Install ``injector`` as the single active DRAM fault injector.

    Like the observer, the injector is duck-typed; it may implement any
    subset of:

    * ``on_subarray_load(subarray, row, col_start, bits) -> bits`` —
      called on the untimed data-install path
      (:meth:`~repro.dram.subarray.Subarray.load_row` /
      :meth:`~repro.dram.subarray.Subarray.load_bits`); returns the bit
      vector actually stored (weak-cell flips, stuck-at cells),
    * ``on_memsys_access(system, bank, row, kind, latency_ns) -> float``
      — called per :class:`~repro.dram.memsys.MemorySystem` access;
      returns *extra* latency (ns) injected for this access (command
      drop retries, delays).  The observer always sees the base latency.

    Unlike the observer, the injector changes behavior — installing one
    with a zero-rate model is test-enforced to be a no-op.
    """
    global INJECTOR
    INJECTOR = injector


def uninstall_injector() -> None:
    """Remove the active fault injector (pristine DRAM again)."""
    global INJECTOR
    INJECTOR = None


def get_injector() -> Optional[Any]:
    """Return the active fault injector, or ``None``."""
    return INJECTOR
