"""DRAM timing parameters.

Sieve's performance model is driven almost entirely by a handful of
DRAM timing constraints (paper Sections III-V):

* one *row cycle* — activate + restore + precharge — costs
  ``tRAS + tRP`` (~50 ns on the paper's Micron parts); this is the unit
  of Sieve's bit-serial matching,
* Ambit-style triple-row activation AND costs
  ``8 x tRAS + 4 x tRP`` (~340 ns),
* Type-1 burst reads are paced by ``tCCD`` (5-7 ns),
* Type-2's inter-subarray hop costs roughly ``tRAS / 8`` (the paper's
  SPICE result: relaying sense amplifiers settle ~8x faster than a full
  activation).

Values default to the Micron DDR3/DDR4 datasheet numbers the paper
quotes; both the paper's DDR3 example part and the DDR4 building block
of the Sieve device are provided as presets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


class TimingError(ValueError):
    """Raised on inconsistent timing parameters."""


@dataclass(frozen=True)
class DramTiming:
    """Timing parameters of one DRAM part, in nanoseconds.

    Attributes
    ----------
    tCK:
        Clock period of the I/O interface.
    tRCD:
        Activate-to-column-command delay.
    tRAS:
        Activate-to-precharge minimum (row restore time).
    tRP:
        Precharge latency.
    tCCD:
        Column-command to column-command delay (burst pacing).
    tCAS:
        Column access strobe latency (read latency from column command).
    burst_length:
        Beats per column read/write burst.
    tREFI:
        Average refresh interval.
    tRFC:
        Refresh cycle time.
    """

    tCK: float
    tRCD: float
    tRAS: float
    tRP: float
    tCCD: float
    tCAS: float
    burst_length: int = 8
    tREFI: float = 7_800.0
    tRFC: float = 350.0

    def __post_init__(self) -> None:
        for name in ("tCK", "tRCD", "tRAS", "tRP", "tCCD", "tCAS", "tREFI", "tRFC"):
            if getattr(self, name) <= 0:
                raise TimingError(f"{name} must be positive")
        if self.burst_length <= 0:
            raise TimingError("burst_length must be positive")
        if self.tRAS < self.tRCD:
            raise TimingError("tRAS must cover tRCD (row must open before access)")

    @property
    def row_cycle(self) -> float:
        """One activate + precharge, ns — Sieve's per-bit matching cost."""
        return self.tRAS + self.tRP

    @property
    def burst_time(self) -> float:
        """Data transfer time of one burst, ns (DDR: 2 beats per tCK)."""
        return self.burst_length * self.tCK / 2

    @property
    def triple_row_activation(self) -> float:
        """Ambit row-wide AND: 8 activations + 4 precharges (Section III).

        The paper charges the full copy-copy-copy-AND-copy sequence:
        ``8 x tRAS + 4 x tRP`` ~ 340 ns on the DDR3 example part.
        """
        return 8 * self.tRAS + 4 * self.tRP

    @property
    def refresh_overhead(self) -> float:
        """Fraction of time the device is unavailable due to refresh."""
        return self.tRFC / self.tREFI

    def scaled(self, factor: float) -> "DramTiming":
        """Uniformly scale all latencies (sensitivity studies)."""
        if factor <= 0:
            raise TimingError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            tCK=self.tCK * factor,
            tRCD=self.tRCD * factor,
            tRAS=self.tRAS * factor,
            tRP=self.tRP * factor,
            tCCD=self.tCCD * factor,
            tCAS=self.tCAS * factor,
            tREFI=self.tREFI,
            tRFC=self.tRFC * factor,
        )


#: The paper's DDR3 example part (micron 32M 8B x4 sg125, Section IV-A):
#: tRAS = 35 ns, tRP = 13.75 ns, so a row cycle is ~49 ns ("~50 ns") and
#: Ambit's triple-row-activation AND is 8*35 + 4*13.75 = 335 ns ("~340 ns").
DDR3_1600 = DramTiming(
    tCK=1.25,
    tRCD=13.75,
    tRAS=35.0,
    tRP=13.75,
    tCCD=6.25,
    tCAS=13.75,
    burst_length=8,
)

#: Micron DDR4 4Gb x16 (the Sieve building block, Section V), DDR4-2400
#: speed grade.  tCCD_L = 6 clocks = 5 ns, in the paper's 5-7 ns range.
DDR4_2400 = DramTiming(
    tCK=0.833,
    tRCD=13.32,
    tRAS=32.0,
    tRP=13.32,
    tCCD=5.0,
    tCAS=13.32,
    burst_length=8,
)

#: Timing used for Sieve devices: DDR4 base part with tRAS/tRP set to the
#: paper's quoted ~50 ns row cycle (35 + 15) so modelled latencies line up
#: with the numbers in the text.
SIEVE_TIMING = DramTiming(
    tCK=0.833,
    tRCD=15.0,
    tRAS=35.0,
    tRP=15.0,
    tCCD=5.0,
    tCAS=15.0,
    burst_length=8,
)
