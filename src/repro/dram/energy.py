"""DRAM energy model (Micron TN-40-07 style IDD arithmetic).

The paper estimates baseline DRAM energy with DRAMSim2 and Sieve's
activation energy with "formula 10a from Micron's technical
documentation" plus a measured +6 % per activation for the
matcher-enhanced rows of Type-2/3.  This module reproduces that
arithmetic from IDD currents, and exposes the three per-operation
energies the simulators charge: row activation (act+pre), column burst
read, and column burst write, plus background power.
"""

from __future__ import annotations

from dataclasses import dataclass

from .timing import DramTiming

#: Extra energy per wordline raised beyond the first in a multi-row
#: activation (paper Section III, citing Ambit: "raising each additional
#: wordline increases the activation energy by 22%").
EXTRA_WORDLINE_FACTOR = 0.22

#: Activation-energy overhead of Sieve Type-2/3 matcher-enhanced rows
#: (paper Section VI-A: "only 6% more energy for each row activation").
SIEVE_ACTIVATION_OVERHEAD = 0.06


class EnergyError(ValueError):
    """Raised on invalid energy parameters."""


@dataclass(frozen=True)
class DramEnergy:
    """Per-device IDD currents (mA) and supply voltage (V).

    Defaults are Micron DDR4 4Gb x16 datasheet values at DDR4-2400.
    """

    vdd: float = 1.2
    idd0: float = 58.0  # one-bank activate-precharge current
    idd2n: float = 34.0  # precharge standby
    idd3n: float = 44.0  # active standby
    idd4r: float = 150.0  # burst read
    idd4w: float = 145.0  # burst write
    idd5: float = 190.0  # refresh

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise EnergyError("vdd must be positive")
        for name in ("idd0", "idd2n", "idd3n", "idd4r", "idd4w", "idd5"):
            if getattr(self, name) <= 0:
                raise EnergyError(f"{name} must be positive")
        if self.idd0 <= self.idd2n:
            raise EnergyError("idd0 must exceed precharge standby current")

    def activation_energy_nj(self, timing: DramTiming) -> float:
        """Energy of one activate + precharge cycle (Micron TN-40-07 10a).

        Subtracts the standby current that would flow anyway over the
        same window: active standby during tRAS, precharge standby
        during tRP.
        """
        trc = timing.tRAS + timing.tRP
        background = (self.idd3n * timing.tRAS + self.idd2n * timing.tRP) / trc
        return (self.idd0 - background) * self.vdd * trc * 1e-3

    def multi_row_activation_energy_nj(self, timing: DramTiming, rows: int) -> float:
        """Activation energy when ``rows`` wordlines are raised at once.

        Each wordline beyond the first adds 22 % (Ambit's measurement,
        quoted in Section III of the paper).
        """
        if rows < 1:
            raise EnergyError(f"rows must be >= 1, got {rows}")
        base = self.activation_energy_nj(timing)
        return base * (1.0 + EXTRA_WORDLINE_FACTOR * (rows - 1))

    def sieve_activation_energy_nj(self, timing: DramTiming) -> float:
        """Activation energy of a matcher-enhanced Sieve row (+6 %)."""
        return self.activation_energy_nj(timing) * (1.0 + SIEVE_ACTIVATION_OVERHEAD)

    def read_burst_energy_nj(self, timing: DramTiming) -> float:
        """Energy of one column read burst above active standby."""
        return (self.idd4r - self.idd3n) * self.vdd * timing.burst_time * 1e-3

    def write_burst_energy_nj(self, timing: DramTiming) -> float:
        """Energy of one column write burst above active standby."""
        return (self.idd4w - self.idd3n) * self.vdd * timing.burst_time * 1e-3

    def background_power_mw(self) -> float:
        """Precharge-standby background power of the device."""
        return self.idd2n * self.vdd

    def refresh_energy_nj(self, timing: DramTiming) -> float:
        """Energy of one refresh command."""
        return (self.idd5 - self.idd2n) * self.vdd * timing.tRFC * 1e-3


#: Default DDR4 energy parameters used throughout the evaluation.
DDR4_ENERGY = DramEnergy()
