"""Trace-replay main-memory model (the paper's DRAMSim2 stand-in).

Section V: "The baseline DRAM energy consumption is estimated by feeding
memory traces associated with k-mer matching functions ... to DRAMSim2
configured to match our workstation."  This module is that flow: replay
a byte-address trace (from the traced classifiers in
:mod:`repro.baselines`) against an open-page DDR4 memory system with the
workstation's channel/rank/bank organization, and report per-access
latency, row-buffer locality, and energy.

It is deliberately simpler than DRAMSim2 — single outstanding access,
open-page policy, no refresh interleaving — because the quantity the
evaluation needs is the *per-lookup DRAM energy and the row-hit rate*,
both of which are dominated by the access pattern, not by controller
scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from . import hooks
from .energy import DDR4_ENERGY, DramEnergy
from .timing import DDR4_2400, DramTiming


class MemSysError(ValueError):
    """Raised on invalid memory-system parameters."""


@dataclass(frozen=True)
class MemSysConfig:
    """Workstation memory organization (paper Table I defaults)."""

    channels: int = 2
    ranks_per_channel: int = 2
    banks_per_rank: int = 16  # DDR4
    row_bytes: int = 8192
    line_bytes: int = 64

    def __post_init__(self) -> None:
        for name in ("channels", "ranks_per_channel", "banks_per_rank",
                     "row_bytes", "line_bytes"):
            if getattr(self, name) <= 0:
                raise MemSysError(f"{name} must be positive")
        if self.row_bytes % self.line_bytes:
            raise MemSysError("row_bytes must be a multiple of line_bytes")

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank


@dataclass
class MemSysStats:
    """Replay counters."""

    accesses: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    total_latency_ns: float = 0.0
    energy_nj: float = 0.0
    #: Latency injected by an installed fault model (command drops
    #: retried, delays); included in ``total_latency_ns``.
    fault_delay_ns: float = 0.0
    #: Commands reissued because a fault injector dropped them.
    faulted_commands: int = 0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0

    @property
    def mean_latency_ns(self) -> float:
        return self.total_latency_ns / self.accesses if self.accesses else 0.0

    @property
    def energy_per_access_nj(self) -> float:
        return self.energy_nj / self.accesses if self.accesses else 0.0


class MemorySystem:
    """Open-page DDR4 model replaying one access at a time."""

    def __init__(
        self,
        config: Optional[MemSysConfig] = None,
        timing: DramTiming = DDR4_2400,
        energy: DramEnergy = DDR4_ENERGY,
    ) -> None:
        self.config = config or MemSysConfig()
        self.timing = timing
        self.energy = energy
        self._open_rows: Dict[int, int] = {}
        self.stats = MemSysStats()

    def _map(self, address: int) -> Tuple[int, int]:
        """Address -> (global bank id, row).

        Line-interleaved across channels, then banks, then rows — the
        standard XOR-free open-page mapping.
        """
        if address < 0:
            raise MemSysError("address must be non-negative")
        cfg = self.config
        line = address // cfg.line_bytes
        channel = line % cfg.channels
        line //= cfg.channels
        bank = line % (cfg.ranks_per_channel * cfg.banks_per_rank)
        line //= cfg.ranks_per_channel * cfg.banks_per_rank
        lines_per_row = cfg.row_bytes // cfg.line_bytes
        row = line // lines_per_row
        global_bank = channel * cfg.ranks_per_channel * cfg.banks_per_rank + bank
        return global_bank, row

    def access(self, address: int, is_write: bool = False) -> float:
        """Replay one cache-line access; returns its latency (ns)."""
        bank, row = self._map(address)
        timing = self.timing
        open_row = self._open_rows.get(bank)
        burst_nj = (
            self.energy.write_burst_energy_nj(timing)
            if is_write
            else self.energy.read_burst_energy_nj(timing)
        )
        if open_row == row:
            self.stats.row_hits += 1
            kind = "hit"
            latency = timing.tCAS + timing.burst_time
            self.stats.energy_nj += burst_nj
        elif open_row is None:
            self.stats.row_misses += 1
            kind = "miss"
            latency = timing.tRCD + timing.tCAS + timing.burst_time
            self.stats.energy_nj += (
                self.energy.activation_energy_nj(timing) + burst_nj
            )
        else:
            self.stats.row_conflicts += 1
            kind = "conflict"
            latency = (
                timing.tRP + timing.tRCD + timing.tCAS + timing.burst_time
            )
            self.stats.energy_nj += (
                self.energy.activation_energy_nj(timing) + burst_nj
            )
        self._open_rows[bank] = row
        self.stats.accesses += 1
        self.stats.total_latency_ns += latency
        observer = hooks.OBSERVER
        if observer is not None:
            # The observer (protocol sanitizer) always sees the base
            # latency; injected fault extras are accounted separately.
            observer.on_memsys_access(self, bank, row, kind, latency)
        injector = hooks.INJECTOR
        if injector is not None:
            extra = injector.on_memsys_access(self, bank, row, kind, latency)
            if extra:
                self.stats.total_latency_ns += extra
                self.stats.fault_delay_ns += extra
                self.stats.faulted_commands += 1
                latency += extra
        return latency

    def replay(self, addresses: Iterable[int]) -> MemSysStats:
        """Replay a whole trace; returns the accumulated stats."""
        for address in addresses:
            self.access(address)
        return self.stats


def replay_lookup_traces(traces: Iterable, config: Optional[MemSysConfig] = None):
    """Replay traced classifier lookups (objects with ``addresses``).

    Returns (stats, lookups, dram_energy_per_lookup_nj) — the numbers
    the paper's CPU-energy methodology produces.
    """
    system = MemorySystem(config)
    lookups = 0
    for trace in traces:
        lookups += 1
        for address in trace.addresses:
            system.access(address)
    if lookups == 0:
        raise MemSysError("no lookups in the trace")
    return system.stats, lookups, system.stats.energy_nj / lookups
