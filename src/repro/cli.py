"""Command-line entry point: regenerate any paper table or figure.

Usage::

    sieve-repro list                 # available experiments
    sieve-repro run fig14            # one experiment
    sieve-repro run all              # everything
    sieve-repro bench C.ST.BG        # all designs on one benchmark
    sieve-repro feasibility          # circuit checks (SPICE stand-in)
"""

from __future__ import annotations

import argparse
import sys

from .experiments import benchmark_by_name, paper_benchmarks, perf_results_for
#: Name -> runner mapping, shared with ``python -m repro.fleet`` and the
#: golden suite (kept importable here for backward compatibility).
from .experiments.registry import EXPERIMENTS
from .hardware import all_feasibility_reports


def _cmd_list(_: argparse.Namespace) -> int:
    print("experiments:")
    for name, fn in EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:10s} {doc}")
    print("benchmarks:")
    for bench in paper_benchmarks():
        print(f"  {bench.name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; try 'sieve-repro list'")
            return 2
        print(EXPERIMENTS[name]().format())
        print()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    try:
        bench = benchmark_by_name(args.benchmark)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    workload = bench.workload()
    results = perf_results_for(workload)
    cpu = results["CPU"]
    print(f"benchmark {bench.name}: {workload.num_kmers:.3g} k-mers, "
          f"hit rate {workload.hit_rate:.2%}")
    header = f"{'design':10s} {'time_s':>12s} {'energy_J':>12s} {'vs CPU':>8s}"
    print(header)
    for name, res in results.items():
        print(
            f"{name:10s} {res.time_s:12.4g} {res.energy_j:12.4g} "
            f"{cpu.time_s / res.time_s:8.2f}"
        )
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    """Export a benchmark's workload summary as JSON."""
    from .serialization import save_workload

    try:
        bench = benchmark_by_name(args.benchmark)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    save_workload(bench.workload(), args.output)
    print(f"wrote {bench.name} workload summary to {args.output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Regenerate the full evaluation into one markdown document."""
    from .experiments.report import generate_report

    generate_report(args.output, quick=not args.full)
    print(f"wrote evaluation report to {args.output}")
    return 0


def _cmd_service(args: argparse.Namespace) -> int:
    """Forward to the ``repro.service`` demo CLI (same flags)."""
    from .service.__main__ import run_from_args

    return run_from_args(args)


def _cmd_feasibility(_: argparse.Namespace) -> int:
    ok = True
    for report in all_feasibility_reports():
        status = "PASS" if report.ok else "FAIL"
        print(f"[{status}] {report.name}: {report.detail}")
        ok &= report.ok
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="sieve-repro",
        description="Regenerate the Sieve (ISCA 2021) evaluation.",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the runtime DRAM protocol sanitizer "
        "(also enabled by SIEVE_SANITIZE=1; see docs/CORRECTNESS.md)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for experiment fan-out (default: "
        "$SIEVE_JOBS or 1; output is byte-identical at any count)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments and benchmarks").set_defaults(
        func=_cmd_list
    )
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment")
    run.set_defaults(func=_cmd_run)
    bench = sub.add_parser("bench", help="all designs on one benchmark")
    bench.add_argument("benchmark")
    bench.set_defaults(func=_cmd_bench)
    workload = sub.add_parser(
        "workload", help="export a benchmark's workload summary as JSON"
    )
    workload.add_argument("benchmark")
    workload.add_argument("output")
    workload.set_defaults(func=_cmd_workload)
    report = sub.add_parser(
        "report", help="regenerate the whole evaluation into one markdown file"
    )
    report.add_argument("output")
    report.add_argument("--full", action="store_true",
                        help="full-scale functional experiments (slower)")
    report.set_defaults(func=_cmd_report)
    sub.add_parser("feasibility", help="circuit feasibility checks").set_defaults(
        func=_cmd_feasibility
    )
    from .service.__main__ import build_parser as service_parser

    service = sub.add_parser(
        "service",
        help="async sharded classification server "
        "(same flags as 'python -m repro.service')",
        parents=[service_parser(add_help=False)],
    )
    service.set_defaults(func=_cmd_service)
    args = parser.parse_args(argv)
    from .analysiskit import enable_from_env, enable_sanitizer

    if args.sanitize:
        enable_sanitizer()
    else:
        enable_from_env()
    if args.jobs is not None:
        from .fleet import configure

        configure(jobs=args.jobs)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
