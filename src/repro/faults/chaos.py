"""Deterministic shard-level chaos for the classification service (Layer 2).

Where :mod:`repro.faults.model` corrupts bits, this module breaks
*replicas*: a :class:`ChaosPlan` schedules shard crashes, stalls, and
slow-replica delays at explicit ``(shard, batch)`` coordinates, and a
:class:`ChaosInjector` hands the dispatcher one
:class:`ChaosAction` per batch.  The service side
(:mod:`repro.service.dispatcher`) provides the survival machinery the
plan exercises — health tracking, failover re-dispatch of orphaned
micro-batches, crash-aware routing.

Plans are explicit schedules, not rates: either written out by a test,
or drawn once from a content-hashed tag (:meth:`ChaosPlan.seeded`,
SV004-clean).  Either way the campaign replays identically — the
injector's ``log`` records what fired, in order, for byte-identity
checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .model import FaultError, hash_fraction, hash_seed


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic chaos campaign against a shard pool."""

    #: Kill shard S just before it executes batch B: (S, B) pairs.
    crashes: Tuple[Tuple[int, int], ...] = ()
    #: Stall shard S for T seconds before batch B: (S, B, T) triples.
    stalls: Tuple[Tuple[int, int, float], ...] = ()
    #: Slow replica S by T seconds on *every* batch: (S, T) pairs.
    slow_shards: Tuple[Tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        for shard, batch in self.crashes:
            if shard < 0 or batch < 0:
                raise FaultError(f"crash ({shard}, {batch}) is negative")
        for shard, batch, seconds in self.stalls:
            if shard < 0 or batch < 0 or seconds < 0:
                raise FaultError(
                    f"stall ({shard}, {batch}, {seconds}) is malformed"
                )
        for shard, seconds in self.slow_shards:
            if shard < 0 or seconds < 0:
                raise FaultError(f"slow shard ({shard}, {seconds}) is malformed")

    @property
    def active(self) -> bool:
        return bool(self.crashes or self.stalls or self.slow_shards)

    @classmethod
    def seeded(
        cls,
        tag: str,
        num_shards: int,
        crashes: int = 1,
        stalls: int = 1,
        stall_s: float = 0.01,
        slow_shards: int = 0,
        slow_s: float = 0.001,
        max_batch: int = 3,
    ) -> "ChaosPlan":
        """Draw a campaign from a content-hashed tag (replayable).

        At most ``num_shards - 1`` crashes are scheduled (on distinct
        shards), so at least one replica always survives to absorb the
        failover re-dispatch.
        """
        if num_shards <= 0:
            raise FaultError(f"num_shards must be positive, got {num_shards}")
        if max_batch <= 0:
            raise FaultError(f"max_batch must be positive, got {max_batch}")
        seed = hash_seed("chaos-plan", tag)
        crash_events: List[Tuple[int, int]] = []
        crashed: Set[int] = set()
        for i in range(min(crashes, num_shards - 1)):
            shard = int(hash_fraction(seed, "crash-shard", i) * num_shards)
            while shard in crashed:
                shard = (shard + 1) % num_shards
            crashed.add(shard)
            batch = int(hash_fraction(seed, "crash-batch", i) * max_batch)
            crash_events.append((shard, batch))
        stall_events: List[Tuple[int, int, float]] = []
        healthy = [s for s in range(num_shards) if s not in crashed]
        for i in range(stalls):
            pool = healthy or list(range(num_shards))
            shard = pool[int(hash_fraction(seed, "stall-shard", i) * len(pool))]
            batch = int(hash_fraction(seed, "stall-batch", i) * max_batch)
            stall_events.append((shard, batch, stall_s))
        slow_events: List[Tuple[int, float]] = []
        for i in range(min(slow_shards, num_shards)):
            pool = healthy or list(range(num_shards))
            shard = pool[int(hash_fraction(seed, "slow-shard", i) * len(pool))]
            if all(s != shard for s, _ in slow_events):
                slow_events.append((shard, slow_s))
        return cls(
            crashes=tuple(crash_events),
            stalls=tuple(stall_events),
            slow_shards=tuple(slow_events),
        )


@dataclass(frozen=True)
class ChaosAction:
    """What the dispatcher must suffer before executing one batch."""

    crash: bool = False
    stall_s: float = 0.0


@dataclass
class ChaosStats:
    """Counters for one injector's fired events."""

    crashes: int = 0
    stalls: int = 0
    slow_batches: int = 0
    stall_s_total: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "crashes": self.crashes,
            "stalls": self.stalls,
            "slow_batches": self.slow_batches,
            "stall_s_total": self.stall_s_total,
        }


class ChaosInjector:
    """Per-batch chaos oracle the :class:`ShardWorker` consults."""

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan
        self.stats = ChaosStats()
        #: Ordered log of fired events: (kind, shard, batch[, seconds]).
        self.log: List[Tuple] = []
        self._crashes: Set[Tuple[int, int]] = set(plan.crashes)
        self._stalls: Dict[Tuple[int, int], float] = {
            (shard, batch): seconds for shard, batch, seconds in plan.stalls
        }
        self._slow: Dict[int, float] = dict(plan.slow_shards)

    def before_batch(
        self, shard_id: int, batch_index: int
    ) -> Optional[ChaosAction]:
        """Chaos scheduled for this (shard, batch), or ``None``.

        Scheduled crashes and stalls fire at most once (they are
        consumed); per-shard slowness applies to every batch.
        """
        crash = (shard_id, batch_index) in self._crashes
        if crash:
            self._crashes.remove((shard_id, batch_index))
        stall_s = self._stalls.pop((shard_id, batch_index), 0.0)
        slow_s = self._slow.get(shard_id, 0.0)
        if not crash and stall_s <= 0 and slow_s <= 0:
            return None
        if stall_s > 0:
            self.stats.stalls += 1
            self.stats.stall_s_total += stall_s
            self.log.append(("stall", shard_id, batch_index, stall_s))
        if slow_s > 0:
            self.stats.slow_batches += 1
            self.stats.stall_s_total += slow_s
            self.log.append(("slow", shard_id, batch_index, slow_s))
        if crash:
            self.stats.crashes += 1
            self.log.append(("crash", shard_id, batch_index))
        return ChaosAction(crash=crash, stall_s=stall_s + slow_s)
