"""Deterministic fault injection and chaos testing (``repro.faults``).

Two layers, one determinism discipline:

* :mod:`repro.faults.model` — cell/command faults behind the
  :mod:`repro.dram.hooks` seam: weak-cell bit flips, stuck-at maps,
  command drops/delays.  Applied identically to every Subarray-backed
  engine (Sieve Type-1/2/3, row-major Ambit) and, via
  :func:`faulted_database`, to the host-table baselines.
* :mod:`repro.faults.chaos` — shard-level chaos plans (crash / stall /
  slow replica) the service dispatcher executes and must survive.

Every fault decision is a content hash of the model seed and the fault
coordinates — no global RNG, no wall clock — so campaigns replay
byte-identically (property-tested in ``tests/test_faults_properties.py``)
and a zero-rate model is a provable no-op against the golden suite.

See the "Fault injection & chaos testing" section of docs/TESTING.md.
"""

from .chaos import ChaosAction, ChaosInjector, ChaosPlan, ChaosStats
from .model import (
    FaultError,
    FaultInjector,
    FaultModel,
    FaultStats,
    StuckCell,
    degraded_mode,
    fault_injection,
    faulted_database,
    hash_fraction,
    hash_seed,
)

__all__ = [
    "ChaosAction",
    "ChaosInjector",
    "ChaosPlan",
    "ChaosStats",
    "FaultError",
    "FaultInjector",
    "FaultModel",
    "FaultStats",
    "StuckCell",
    "degraded_mode",
    "fault_injection",
    "faulted_database",
    "hash_fraction",
    "hash_seed",
]
