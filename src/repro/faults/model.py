"""Deterministic cell/command-level DRAM fault model (Layer 1).

Real PIM deployments run on imperfect silicon: retention-weak cells,
stuck-at bits from process variation, and occasional command
drops/delays on a marginal channel.  The simulators in this repository
assume pristine DRAM; this module injects those defects *behind* the
:mod:`repro.dram.hooks` seam so every engine built on
:class:`~repro.dram.subarray.Subarray` — the functional Sieve device,
the Type-1 bank, the row-major Ambit baseline — and every trace replay
through :class:`~repro.dram.memsys.MemorySystem` can run under an
identical fault schedule.

Determinism is the design center: every fault decision is drawn from a
content hash of ``(model seed, unit label, row)`` — never from global
RNG state or wall-clock entropy (lint rule SV004) — so a chaos run
replays byte-identically, and a zero-rate model is a provable no-op.

Two fault classes:

* **persistent cell faults** (``bit_flip_rate``, ``stuck_cells``) are
  applied on the untimed data-install path (``load_row``/``load_bits``).
  A weak cell inverts whatever is written to it, every time — the mask
  is a pure function of ``(seed, unit, row, col)``, so reloading a
  region corrupts it the same way and the scalar/batched match paths
  stay bit-identical (both read the same corrupted cells).
* **command faults** (``command_drop_rate`` / ``command_delay_rate``)
  perturb :meth:`MemorySystem.access` latency: a dropped command is
  modelled as a reissue (the access pays its latency and energy twice);
  a delayed one adds ``command_delay_ns``.  The protocol sanitizer's
  exact-latency check still passes because the observer is notified
  with the base latency; injected extras are accounted separately
  (``MemSysStats.fault_delay_ns``).
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..dram import hooks


class FaultError(ValueError):
    """Raised on malformed fault models or injector misuse."""


def hash_fraction(*parts: object) -> float:
    """Deterministic U[0, 1) draw from a content hash of ``parts``.

    The SV004-clean randomness primitive: no global RNG state, no
    wall-clock entropy — equal parts always produce the equal draw, in
    any process, on any platform.
    """
    text = "|".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def hash_seed(*parts: object) -> int:
    """Deterministic 63-bit seed from a content hash of ``parts``."""
    text = "|".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class StuckCell:
    """One weak cell pinned to a constant value.

    ``unit`` names the physical array the cell lives in — the injector
    labels arrays ``unit0, unit1, ...`` in first-seen order (call
    :meth:`FaultInjector.reset_units` to restart the namespace per
    device build), so a map keyed by (unit, row, col) addresses the
    same cells across replicas and designs.
    """

    unit: str
    row: int
    col: int
    value: int

    def __post_init__(self) -> None:
        if self.row < 0 or self.col < 0:
            raise FaultError(f"stuck cell ({self.row}, {self.col}) is negative")
        if self.value not in (0, 1):
            raise FaultError(f"stuck value must be 0 or 1, got {self.value}")


@dataclass(frozen=True)
class FaultModel:
    """Seed-driven fault configuration (all rates are probabilities)."""

    #: Per-cell probability that a cell is retention-weak (inverts writes).
    bit_flip_rate: float = 0.0
    #: Explicit stuck-at weak-cell map, keyed by (unit, row, col).
    stuck_cells: Tuple[StuckCell, ...] = ()
    #: Per-access probability a command is dropped and reissued.
    command_drop_rate: float = 0.0
    #: Per-access probability a command is delayed by ``command_delay_ns``.
    command_delay_rate: float = 0.0
    #: Extra latency charged to a delayed command.
    command_delay_ns: float = 7.5
    #: Root of every hash-derived fault decision.
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("bit_flip_rate", "command_drop_rate", "command_delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultError(f"{name} must be in [0, 1], got {rate}")
        if self.command_delay_ns < 0:
            raise FaultError(
                f"command_delay_ns must be >= 0, got {self.command_delay_ns}"
            )
        if self.seed < 0:
            raise FaultError(f"seed must be >= 0, got {self.seed}")

    @property
    def active(self) -> bool:
        """Whether this model can perturb anything at all."""
        return bool(
            self.bit_flip_rate
            or self.stuck_cells
            or self.command_drop_rate
            or self.command_delay_rate
        )

    @classmethod
    def seeded(cls, tag: str, **fields: Any) -> "FaultModel":
        """Build a model whose seed is a content hash of ``tag``.

        The repository-standard way to name a fault campaign: the tag
        (not process entropy) determines every fault the model injects.
        """
        return cls(seed=hash_seed("fault-model", tag), **fields)


@dataclass
class FaultStats:
    """Counters accumulated by one injector (JSON-friendly)."""

    loads: int = 0
    bits_flipped: int = 0
    stuck_applied: int = 0
    accesses: int = 0
    commands_dropped: int = 0
    commands_delayed: int = 0
    extra_latency_ns: float = 0.0
    records_corrupted: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "loads": self.loads,
            "bits_flipped": self.bits_flipped,
            "stuck_applied": self.stuck_applied,
            "accesses": self.accesses,
            "commands_dropped": self.commands_dropped,
            "commands_delayed": self.commands_delayed,
            "extra_latency_ns": self.extra_latency_ns,
            "records_corrupted": self.records_corrupted,
        }


class FaultInjector:
    """Applies a :class:`FaultModel` through the DRAM hook seam.

    Install with :func:`fault_injection` (or
    :func:`repro.dram.hooks.install_injector` directly).  The injector
    keeps an append-only ``schedule`` of every fault it applied —
    :meth:`schedule_digest` hashes it, so two runs under the same model
    can be compared byte-for-byte.
    """

    def __init__(self, model: FaultModel) -> None:
        self.model = model
        self.stats = FaultStats()
        #: Ordered log of applied faults: (kind, unit, ...detail) tuples.
        self.schedule: List[Tuple] = []
        self._unit_counter = 0
        #: Cached per-(unit, row) weak-cell masks (pure hash functions).
        self._mask_cache: Dict[Tuple[str, int], np.ndarray] = {}
        self._stuck: Dict[str, List[StuckCell]] = {}
        for cell in model.stuck_cells:
            self._stuck.setdefault(cell.unit, []).append(cell)
        #: Per-unit access counters for command-fault draws.
        self._access_index: Dict[str, int] = {}

    # -- unit naming ----------------------------------------------------------

    def unit_of(self, obj: Any) -> str:
        """Stable label for a physical array (first-seen order).

        The label sticks to the object, so later loads into the same
        array reuse it regardless of interleaving; :meth:`reset_units`
        restarts the counter so each device replica built afterwards
        sees the same label sequence (identical weak cells per replica).
        """
        label = getattr(obj, "_fault_unit", None)
        if label is None:
            label = f"unit{self._unit_counter}"
            self._unit_counter += 1
            try:
                obj._fault_unit = label
            except AttributeError:
                pass
        return label

    def reset_units(self) -> None:
        """Restart the unit namespace (call before each replica build)."""
        self._unit_counter = 0

    # -- cell faults (Subarray load path) -------------------------------------

    def _weak_mask(self, obj: Any, unit: str, row: int) -> np.ndarray:
        """Full-row weak-cell mask for (unit, row) — cached, hash-seeded."""
        key = (unit, row)
        mask = self._mask_cache.get(key)
        if mask is None:
            rng = np.random.default_rng(
                hash_seed(self.model.seed, "cells", unit, row)
            )
            mask = rng.random(obj.cols) < self.model.bit_flip_rate
            mask.setflags(write=False)
            self._mask_cache[key] = mask
        return mask

    def on_subarray_load(
        self, subarray: Any, row: int, col_start: int, bits: np.ndarray
    ) -> np.ndarray:
        """Corrupt an installed bit vector; returns what is stored."""
        self.stats.loads += 1
        model = self.model
        if not model.bit_flip_rate and not self._stuck:
            return bits
        unit = self.unit_of(subarray)
        out = np.array(bits, dtype=np.uint8) % 2
        if model.bit_flip_rate:
            mask = self._weak_mask(subarray, unit, row)[
                col_start : col_start + len(out)
            ]
            flips = int(mask.sum())
            if flips:
                out[mask] ^= 1
                self.stats.bits_flipped += flips
                self.schedule.append(("flip", unit, row, col_start, flips))
        for cell in self._stuck.get(unit, ()):
            if cell.row == row and col_start <= cell.col < col_start + len(out):
                out[cell.col - col_start] = cell.value
                self.stats.stuck_applied += 1
                self.schedule.append(
                    ("stuck", unit, cell.row, cell.col, cell.value)
                )
        return out

    # -- command faults (MemorySystem access path) ----------------------------

    def on_memsys_access(
        self, system: Any, bank: int, row: int, kind: str, latency_ns: float
    ) -> float:
        """Draw command faults for one access; returns extra latency."""
        self.stats.accesses += 1
        model = self.model
        if not model.command_drop_rate and not model.command_delay_rate:
            return 0.0
        unit = self.unit_of(system)
        index = self._access_index.get(unit, 0)
        self._access_index[unit] = index + 1
        extra = 0.0
        if (
            model.command_drop_rate
            and hash_fraction(model.seed, "drop", unit, index)
            < model.command_drop_rate
        ):
            # Dropped command: the controller reissues it — the access
            # pays its full latency again.
            extra += latency_ns
            self.stats.commands_dropped += 1
            self.schedule.append(("drop", unit, index, bank, row))
        if (
            model.command_delay_rate
            and hash_fraction(model.seed, "delay", unit, index)
            < model.command_delay_rate
        ):
            extra += model.command_delay_ns
            self.stats.commands_delayed += 1
            self.schedule.append(("delay", unit, index, bank, row))
        self.stats.extra_latency_ns += extra
        return extra

    # -- host-memory faults (record corruption) -------------------------------

    def corrupt_records(
        self,
        unit: str,
        records: Sequence[Tuple[int, int]],
        key_bits: int,
        payload_bits: int = 32,
    ) -> List[Tuple[int, int]]:
        """Flip bits in host-resident (k-mer, payload) records.

        Models the same weak-cell rate hitting a host-DRAM table (the
        CPU baselines' storage), so host and in-situ engines can be
        compared under one model.  Keys stay within ``key_bits``.
        """
        if key_bits <= 0 or payload_bits <= 0:
            raise FaultError("key_bits and payload_bits must be positive")
        rate = self.model.bit_flip_rate
        if rate <= 0 or not records:
            return list(records)
        rng = np.random.default_rng(
            hash_seed(self.model.seed, "records", unit)
        )
        mask = rng.random((len(records), key_bits + payload_bits)) < rate
        out: List[Tuple[int, int]] = []
        for i, (kmer, payload) in enumerate(records):
            flipped = np.flatnonzero(mask[i])
            if flipped.size:
                for bit in flipped.tolist():
                    if bit < key_bits:
                        kmer ^= 1 << bit
                    else:
                        payload ^= 1 << (bit - key_bits)
                self.stats.records_corrupted += 1
                self.stats.bits_flipped += int(flipped.size)
                self.schedule.append(("record", unit, i, int(flipped.size)))
            out.append((kmer, payload))
        return out

    # -- replay surface -------------------------------------------------------

    def schedule_digest(self) -> str:
        """Content hash of the applied-fault log (byte-identity checks)."""
        payload = repr(self.schedule).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()


@contextmanager
def fault_injection(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` on the DRAM hook seam for the with-block."""
    hooks.install_injector(injector)
    try:
        yield injector
    finally:
        hooks.uninstall_injector()


def degraded_mode() -> bool:
    """Whether an *active* fault model is currently installed.

    Backends snapshot this at construction time to set the
    ``degraded`` flag in their :class:`repro.api.BackendCapabilities`.
    """
    injector = hooks.get_injector()
    model = getattr(injector, "model", None)
    return bool(getattr(model, "active", False))


def faulted_database(database: Any, injector: FaultInjector, unit: str = "host"):
    """Rebuild a :class:`~repro.genomics.database.KmerDatabase` with its
    records corrupted by ``injector`` (host-DRAM bit flips).

    Corrupted keys that collide are LCA-merged when the database has a
    taxonomy; otherwise the first record wins (a real table would hold
    one of them).  The returned database reports ``degraded=True``.
    """
    from ..genomics.database import DatabaseError, KmerDatabase

    records = injector.corrupt_records(
        unit, database.sorted_records(), key_bits=2 * database.k
    )
    out = KmerDatabase(
        database.k, canonical=database.canonical, taxonomy=database.taxonomy
    )
    key_mask = (1 << (2 * database.k)) - 1
    for kmer, payload in records:
        try:
            out.add(kmer & key_mask, payload)
        except (DatabaseError, KeyError):
            # Collision without a taxonomy, or a corrupted payload the
            # taxonomy cannot LCA-merge: keep the earlier record.
            continue
    out.mark_degraded()
    return out
