"""GPU baseline performance/energy model (cuCLARK class).

The paper idealizes the GPU baseline (Section V): host-device transfer
is free and the dataset always fits on-board.  Even so, k-mer matching
on a GPU is bound by *dependent random accesses*: a lookup is a short
pointer chase (bucket directory -> records -> payload) whose successive
loads cannot be overlapped within a thread, and warp divergence in the
search loop collapses the effective memory-level parallelism far below
the hardware's thousands of resident warps.

The model takes the minimum of two throughput ceilings:

* latency-bound: ``effective_concurrent_warps`` warps each complete one
  ``dependent_accesses``-deep chain per round trip,
* bandwidth-bound: every lookup moves ``bytes_per_lookup`` of cache
  lines.

``effective_concurrent_warps`` is the calibrated constant (see
EXPERIMENTS.md); the bandwidth ceiling is never the binding one for
this access pattern, which is the paper's Section VI-B point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sieve.perfmodel import PerfResult, WorkloadStats
from .machines import TITAN_X_PASCAL, GpuConfig


@dataclass(frozen=True)
class GpuModelParams:
    """Calibrated GPU lookup-kernel constants."""

    dependent_accesses_per_lookup: float = 4.0
    effective_concurrent_warps: float = 96.0
    bytes_per_lookup: float = 128.0

    def __post_init__(self) -> None:
        if self.dependent_accesses_per_lookup <= 0:
            raise ValueError("dependent accesses must be positive")
        if self.effective_concurrent_warps <= 0:
            raise ValueError("effective warps must be positive")
        if self.bytes_per_lookup <= 0:
            raise ValueError("bytes per lookup must be positive")


class GpuBaselineModel:
    """Idealized GPU k-mer matching baseline."""

    design = "GPU"

    def __init__(
        self,
        config: Optional[GpuConfig] = None,
        params: Optional[GpuModelParams] = None,
    ) -> None:
        self.config = config or TITAN_X_PASCAL
        self.params = params or GpuModelParams()

    def latency_bound_qps(self) -> float:
        """Lookups/s limited by dependent-access round trips."""
        p = self.params
        chain_ns = p.dependent_accesses_per_lookup * self.config.mem_latency_ns
        return p.effective_concurrent_warps / (chain_ns * 1e-9)

    def bandwidth_bound_qps(self) -> float:
        """Lookups/s limited by raw memory bandwidth."""
        return self.config.mem_bandwidth_gbs * 1e9 / self.params.bytes_per_lookup

    def throughput_qps(self) -> float:
        return min(self.latency_bound_qps(), self.bandwidth_bound_qps())

    def aggregate_ns_per_kmer(self) -> float:
        return 1e9 / self.throughput_qps()

    def run(self, workload: WorkloadStats) -> PerfResult:
        """Latency and energy for a workload's full k-mer set."""
        time_s = workload.num_kmers / self.throughput_qps()
        energy_j = self.config.matching_power_w * time_s
        return PerfResult(
            design=self.design,
            workload=workload.name,
            time_s=time_s,
            energy_j=energy_j,
            breakdown={
                "num_kmers": float(workload.num_kmers),
                "latency_bound_qps": self.latency_bound_qps(),
                "bandwidth_bound_qps": self.bandwidth_bound_qps(),
                "aggregate_ns_per_kmer": self.aggregate_ns_per_kmer(),
            },
        )
