"""Plain sorted-list k-mer index (the third software structure the paper
names in Section II: "purely hash table or sorted list approaches").

A flat array of 12-byte records sorted by k-mer, searched with binary
search.  Compared to Kraken's signature buckets it has *no* locality
structure at all — every probe of the log2(N) search lands on a
different cache line of a multi-GB array, which makes it the cleanest
demonstration of the paper's memory-wall argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..api import BackendCapabilities, ScalarQueryBackendBase, warn_deprecated

#: Record size: 8-byte k-mer + 4-byte taxon (Section II).
RECORD_BYTES = 12


class SortedListError(ValueError):
    """Raised on malformed construction."""


@dataclass(frozen=True)
class SortedLookup:
    """Result of one traced binary search."""

    taxon: Optional[int]
    probes: int
    addresses: Tuple[int, ...]


class SortedKmerList:
    """Binary-searched flat record array: k-mer -> taxon."""

    def __init__(
        self, records: Iterable[Tuple[int, int]], base_address: int = 0
    ) -> None:
        items = sorted(records)
        if not items:
            raise SortedListError("cannot build an empty sorted list")
        for (a, _), (b, _) in zip(items, items[1:]):
            if a == b:
                raise SortedListError(f"duplicate k-mer {a}")
        self._keys: List[int] = [k for k, _ in items]
        self._values: List[int] = [v for _, v in items]
        self.base_address = base_address

    def __len__(self) -> int:
        return len(self._keys)

    def memory_bytes(self) -> int:
        return len(self._keys) * RECORD_BYTES

    def get(self, kmer: int) -> Optional[int]:
        return self.traced_lookup(kmer).taxon

    def lookup(self, kmer: int) -> Optional[int]:
        """Deprecated name for :meth:`get` (PR-4 API unification)."""
        warn_deprecated("SortedKmerList.lookup()", "SortedKmerList.get()")
        return self.get(kmer)

    def traced_lookup(self, kmer: int) -> SortedLookup:
        """Binary search recording every record address touched."""
        lo, hi = 0, len(self._keys) - 1
        addresses = []
        taxon = None
        while lo <= hi:
            mid = (lo + hi) // 2
            addresses.append(self.base_address + mid * RECORD_BYTES)
            if self._keys[mid] == kmer:
                taxon = self._values[mid]
                break
            if self._keys[mid] < kmer:
                lo = mid + 1
            else:
                hi = mid - 1
        return SortedLookup(
            taxon=taxon, probes=len(addresses), addresses=tuple(addresses)
        )

    def expected_probes(self) -> float:
        """~log2(N) probes per lookup."""
        import math

        return math.log2(max(len(self._keys), 2))


class SortedListClassifier(ScalarQueryBackendBase):
    """Classifier over the flat sorted list (LMAT-class tooling).

    Implements the :class:`repro.api.QueryBackend` protocol over the
    flat list's scalar binary search.
    """

    def __init__(self, database) -> None:
        super().__init__()
        self.k = database.k
        self.canonical = database.canonical
        self.degraded = database.capabilities().degraded
        self.index = SortedKmerList(list(database.items()))

    def get(self, kmer: int) -> Optional[int]:
        if self.canonical:
            from ..genomics.encoding import canonical_kmer

            kmer = canonical_kmer(kmer, self.k)
        return self.index.get(kmer)

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="sortedlist-classifier",
            kind="host-sorted-list",
            k=self.k,
            canonical=self.canonical,
            batched=False,
            degraded=self.degraded,
        )

    def lookup(self, kmer: int) -> Optional[int]:
        """Deprecated name for :meth:`get` (PR-4 API unification)."""
        warn_deprecated(
            "SortedListClassifier.lookup()", "SortedListClassifier.get()"
        )
        return self.get(kmer)
