"""Kraken-style signature-bucketed sorted-list index, built from scratch.

Kraken (paper Section II) hybridizes a hash table and a sorted list:
k-mers sharing a *signature* (their minimizer) land in the same bucket,
which is searched with binary search.  Because two adjacent query
k-mers overlap by k-1 bases they often share a minimizer, so the bucket
fetched for one lookup may serve the next — the locality optimization
the paper measures at only ~8 % effectiveness on real data.

The memory image is flat (bucket offsets region + packed sorted records
region) so traced lookups report the addresses they touch, like the hash
table in :mod:`repro.baselines.hashtable`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..api import BackendCapabilities, ScalarQueryBackendBase, warn_deprecated
from ..genomics.encoding import BITS_PER_BASE
from ..genomics.sequence import DnaSequence

#: Record size in the packed bucket region (8 B k-mer + 4 B taxon).
RECORD_BYTES = 12
OFFSET_SLOT_BYTES = 8


class KrakenIndexError(ValueError):
    """Raised on malformed construction or queries."""


@dataclass(frozen=True)
class BucketLookup:
    """Result of one traced lookup."""

    taxon: Optional[int]
    signature: int
    probes: int
    addresses: Tuple[int, ...]
    same_bucket_as_previous: bool


def minimizer(kmer: int, k: int, m: int) -> int:
    """Smallest m-mer inside a packed k-mer (Kraken's signature).

    Scans all k - m + 1 windows of the packed representation.
    """
    if not 0 < m <= k:
        raise KrakenIndexError(f"minimizer length {m} must be in (0, {k}]")
    mask = (1 << (BITS_PER_BASE * m)) - 1
    best = None
    for start in range(k - m + 1):
        shift = BITS_PER_BASE * (k - m - start)
        window = (kmer >> shift) & mask
        if best is None or window < best:
            best = window
    assert best is not None
    return best


class SignatureSortedIndex:
    """Minimizer-bucketed sorted-record index: k-mer -> taxon."""

    def __init__(
        self,
        records: Iterable[Tuple[int, int]],
        k: int,
        m: int = 8,
        base_address: int = 0,
    ) -> None:
        items = sorted(records)
        if not items:
            raise KrakenIndexError("cannot build an empty index")
        self.k = k
        self.m = m
        buckets: Dict[int, List[Tuple[int, int]]] = {}
        for kmer, taxon in items:
            buckets.setdefault(minimizer(kmer, k, m), []).append((kmer, taxon))
        # Pack buckets contiguously, each sorted (items were pre-sorted).
        self._signatures = sorted(buckets)
        self._sig_pos = {sig: i for i, sig in enumerate(self._signatures)}
        self._bucket_keys: List[List[int]] = []
        self._bucket_vals: List[List[int]] = []
        self._bucket_offsets: List[int] = []
        offset = 0
        for sig in self._signatures:
            entries = buckets[sig]
            self._bucket_keys.append([kmer for kmer, _ in entries])
            self._bucket_vals.append([taxon for _, taxon in entries])
            self._bucket_offsets.append(offset)
            offset += len(entries)
        self.total_records = offset
        self.offset_base = base_address
        self.record_base = (
            base_address + len(self._signatures) * OFFSET_SLOT_BYTES
        )
        self._last_signature: Optional[int] = None

    def __len__(self) -> int:
        return self.total_records

    @property
    def num_buckets(self) -> int:
        return len(self._signatures)

    def get(self, kmer: int) -> Optional[int]:
        """Plain lookup: taxon or None."""
        return self.traced_lookup(kmer).taxon

    def lookup(self, kmer: int) -> Optional[int]:
        """Deprecated name for :meth:`get` (PR-4 API unification)."""
        warn_deprecated(
            "SignatureSortedIndex.lookup()", "SignatureSortedIndex.get()"
        )
        return self.get(kmer)

    def traced_lookup(self, kmer: int) -> BucketLookup:
        """Binary-search lookup recording the addresses it touches."""
        sig = minimizer(kmer, self.k, self.m)
        same = sig == self._last_signature
        self._last_signature = sig
        pos = self._sig_pos.get(sig)
        if pos is None:
            # Bucket-directory probe only; no such signature in the DB.
            return BucketLookup(None, sig, 0, (self.offset_base,), same)
        keys = self._bucket_keys[pos]
        base = self.record_base + self._bucket_offsets[pos] * RECORD_BYTES
        addresses = [self.offset_base + pos * OFFSET_SLOT_BYTES]
        probes = 0
        lo, hi = 0, len(keys) - 1
        taxon = None
        while lo <= hi:
            mid = (lo + hi) // 2
            addresses.append(base + mid * RECORD_BYTES)
            probes += 1
            if keys[mid] == kmer:
                taxon = self._bucket_vals[pos][mid]
                break
            if keys[mid] < kmer:
                lo = mid + 1
            else:
                hi = mid - 1
        return BucketLookup(taxon, sig, probes, tuple(addresses), same)

    def memory_bytes(self) -> int:
        return (
            len(self._signatures) * OFFSET_SLOT_BYTES
            + self.total_records * RECORD_BYTES
        )

    def bucket_size_stats(self) -> Tuple[float, int]:
        """(mean, max) bucket sizes."""
        sizes = [len(b) for b in self._bucket_keys]
        return sum(sizes) / len(sizes), max(sizes)

    def consecutive_same_bucket_fraction(
        self, reads: Sequence[DnaSequence]
    ) -> float:
        """Fraction of consecutive query k-mers indexing the same bucket.

        The paper measures ~8 % on Kraken's own datasets — the locality
        the hybrid structure was designed for barely materializes.
        """
        same = 0
        total = 0
        for read in reads:
            prev: Optional[int] = None
            for kmer in read.kmers(self.k):
                sig = minimizer(kmer, self.k, self.m)
                if prev is not None:
                    total += 1
                    if sig == prev:
                        same += 1
                prev = sig
        if total == 0:
            raise KrakenIndexError("no consecutive k-mers in the read set")
        return same / total


class KrakenClassifier(ScalarQueryBackendBase):
    """Kraken-style classifier: signature index + majority voting.

    Implements the :class:`repro.api.QueryBackend` protocol; ``query``
    probes the signature-bucketed index per k-mer (software engines
    have no batched command protocol, so ``batched`` is a no-op).
    """

    def __init__(self, database, m: int = 8) -> None:
        super().__init__()
        self.k = database.k
        self.canonical = database.canonical
        self.degraded = database.capabilities().degraded
        self.index = SignatureSortedIndex(list(database.items()), database.k, m)

    def get(self, kmer: int) -> Optional[int]:
        if self.canonical:
            from ..genomics.encoding import canonical_kmer

            kmer = canonical_kmer(kmer, self.k)
        return self.index.get(kmer)

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="kraken-classifier",
            kind="host-signature-index",
            k=self.k,
            canonical=self.canonical,
            batched=False,
            degraded=self.degraded,
        )

    def lookup(self, kmer: int) -> Optional[int]:
        """Deprecated name for :meth:`get` (PR-4 API unification)."""
        warn_deprecated("KrakenClassifier.lookup()", "KrakenClassifier.get()")
        return self.get(kmer)
