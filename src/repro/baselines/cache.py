"""Set-associative cache simulator with LRU replacement.

Used to reproduce the paper's Section II characterization of why k-mer
matching is memory-bound: hash-table / signature-bucket lookups touch
new cache lines almost every time, so even a 35 MB LLC misses
constantly.  The CPU baseline model consumes miss rates measured here.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable


class CacheError(ValueError):
    """Raised on invalid cache parameters."""


@dataclass
class CacheStats:
    """Hit/miss counters."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A single-level, write-allocate, LRU set-associative cache."""

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = 64) -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise CacheError("cache dimensions must be positive")
        if size_bytes % (ways * line_bytes):
            raise CacheError(
                f"size {size_bytes} not divisible by ways x line "
                f"({ways} x {line_bytes})"
            )
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        self._sets: Dict[int, OrderedDict] = {}
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        if address < 0:
            raise CacheError(f"address must be non-negative, got {address}")
        line = address // self.line_bytes
        set_idx = line % self.num_sets
        tag = line // self.num_sets
        entries = self._sets.setdefault(set_idx, OrderedDict())
        self.stats.accesses += 1
        if tag in entries:
            entries.move_to_end(tag)
            self.stats.hits += 1
            return True
        entries[tag] = True
        if len(entries) > self.ways:
            entries.popitem(last=False)
        return False

    def access_range(self, address: int, size: int) -> int:
        """Access ``size`` bytes starting at ``address``; returns misses."""
        if size <= 0:
            raise CacheError(f"size must be positive, got {size}")
        first = address // self.line_bytes
        last = (address + size - 1) // self.line_bytes
        misses = 0
        for line in range(first, last + 1):
            if not self.access(line * self.line_bytes):
                misses += 1
        return misses

    def warm(self, addresses: Iterable[int]) -> None:
        """Touch addresses without counting statistics."""
        saved = CacheStats(self.stats.accesses, self.stats.hits)
        for addr in addresses:
            self.access(addr)
        self.stats = saved


class CacheHierarchy:
    """L1/L2/LLC stack; returns the level an access hits at.

    Models the paper's Table I workstation: 32 KB L1, 256 KB L2,
    35 MB shared LLC.
    """

    LEVELS = ("L1", "L2", "LLC", "DRAM")

    def __init__(
        self,
        l1_bytes: int = 32 * 1024,
        l2_bytes: int = 256 * 1024,
        llc_bytes: int = 35 * 2**20,
        line_bytes: int = 64,
    ) -> None:
        # 35 MB does not divide evenly by 8 ways x 64 B sets; use 20 ways
        # (Broadwell LLC associativity).
        self.l1 = SetAssociativeCache(l1_bytes, 8, line_bytes)
        self.l2 = SetAssociativeCache(l2_bytes, 8, line_bytes)
        llc_ways = 20
        usable = (llc_bytes // (llc_ways * line_bytes)) * llc_ways * line_bytes
        self.llc = SetAssociativeCache(usable, llc_ways, line_bytes)
        self.dram_accesses = 0

    def access(self, address: int) -> str:
        """Access an address; returns the level that served it."""
        if self.l1.access(address):
            return "L1"
        if self.l2.access(address):
            return "L2"
        if self.llc.access(address):
            return "LLC"
        self.dram_accesses += 1
        return "DRAM"

    def access_range(self, address: int, size: int) -> Dict[str, int]:
        """Access a byte range; returns per-level service counts."""
        counts = {level: 0 for level in self.LEVELS}
        line = self.l1.line_bytes
        first = address // line
        last = (address + size - 1) // line
        for ln in range(first, last + 1):
            counts[self.access(ln * line)] += 1
        return counts
