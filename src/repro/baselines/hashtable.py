"""CLARK/LMAT-style chained hash table, built from scratch.

CLARK and LMAT store the reference k-mer set in a hash table with the
k-mer pattern as key and the taxon label as value (paper Section II).
We implement the table over flat arrays with explicit *addresses* so a
lookup can report exactly which memory locations it touched — that
trace, fed to the cache simulator, reproduces the paper's observation
that hash-table k-mer lookups miss the cache on nearly every access
(chain traversal lands on unrelated lines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..api import BackendCapabilities, ScalarQueryBackendBase, warn_deprecated

#: Memory-image field sizes (12-byte records, Section II).
BUCKET_SLOT_BYTES = 8
ENTRY_BYTES = 16  # 8 B key + 4 B taxon + 4 B next


class HashTableError(ValueError):
    """Raised on malformed construction."""


@dataclass(frozen=True)
class LookupTrace:
    """Result of one traced lookup."""

    taxon: Optional[int]
    addresses: Tuple[int, ...]
    chain_length: int


def _mix(key: int) -> int:
    """64-bit finalizer (splitmix64-style) for bucket selection."""
    key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9 % 2**64
    key = (key ^ (key >> 27)) * 0x94D049BB133111EB % 2**64
    return key ^ (key >> 31)


class ChainedHashTable:
    """Flat-array chained hash table: k-mer -> taxon.

    The memory image is two regions, mirroring a real implementation:
    a bucket array of entry indices at ``bucket_base`` and an entry
    array (key, taxon, next) at ``entry_base``.
    """

    def __init__(
        self,
        records: Iterable[Tuple[int, int]],
        load_factor: float = 0.7,
        bucket_base: int = 0,
    ) -> None:
        if not 0.05 <= load_factor <= 1.0:
            raise HashTableError(f"load_factor must be in [0.05, 1], got {load_factor}")
        items = list(records)
        if not items:
            raise HashTableError("cannot build an empty hash table")
        self.num_buckets = max(1, int(len(items) / load_factor))
        self._buckets: List[int] = [-1] * self.num_buckets
        self._keys: List[int] = []
        self._values: List[int] = []
        self._next: List[int] = []
        self.bucket_base = bucket_base
        self.entry_base = bucket_base + self.num_buckets * BUCKET_SLOT_BYTES
        for key, value in items:
            self._insert(key, value)

    def __len__(self) -> int:
        return len(self._keys)

    def _bucket_of(self, key: int) -> int:
        return _mix(key) % self.num_buckets

    def _insert(self, key: int, value: int) -> None:
        bucket = self._bucket_of(key)
        idx = self._buckets[bucket]
        while idx != -1:
            if self._keys[idx] == key:
                self._values[idx] = value
                return
            idx = self._next[idx]
        self._keys.append(key)
        self._values.append(value)
        self._next.append(self._buckets[bucket])
        self._buckets[bucket] = len(self._keys) - 1

    def get(self, key: int) -> Optional[int]:
        """Plain lookup: taxon or None."""
        idx = self._buckets[self._bucket_of(key)]
        while idx != -1:
            if self._keys[idx] == key:
                return self._values[idx]
            idx = self._next[idx]
        return None

    def lookup(self, key: int) -> Optional[int]:
        """Deprecated name for :meth:`get` (PR-4 API unification)."""
        warn_deprecated("ChainedHashTable.lookup()", "ChainedHashTable.get()")
        return self.get(key)

    def traced_lookup(self, key: int) -> LookupTrace:
        """Lookup that records every byte address it touches."""
        bucket = self._bucket_of(key)
        addresses = [self.bucket_base + bucket * BUCKET_SLOT_BYTES]
        idx = self._buckets[bucket]
        chain = 0
        taxon = None
        while idx != -1:
            addresses.append(self.entry_base + idx * ENTRY_BYTES)
            chain += 1
            if self._keys[idx] == key:
                taxon = self._values[idx]
                break
            idx = self._next[idx]
        return LookupTrace(taxon=taxon, addresses=tuple(addresses), chain_length=chain)

    def memory_bytes(self) -> int:
        """Footprint of the memory image."""
        return (
            self.num_buckets * BUCKET_SLOT_BYTES + len(self._keys) * ENTRY_BYTES
        )

    def mean_chain_length(self) -> float:
        """Average chain length over occupied buckets."""
        lengths = []
        for head in self._buckets:
            if head == -1:
                continue
            n = 0
            idx = head
            while idx != -1:
                n += 1
                idx = self._next[idx]
            lengths.append(n)
        return sum(lengths) / len(lengths) if lengths else 0.0


class ClarkClassifier(ScalarQueryBackendBase):
    """CLARK-style classifier: hash-table engine + majority voting.

    Implements the :class:`repro.api.QueryBackend` protocol over the
    chained hash table's scalar probe.
    """

    def __init__(self, database) -> None:
        super().__init__()
        records = list(database.items())
        self.k = database.k
        self.canonical = database.canonical
        self.degraded = database.capabilities().degraded
        self.table = ChainedHashTable(records)

    def get(self, kmer: int) -> Optional[int]:
        if self.canonical:
            from ..genomics.encoding import canonical_kmer

            kmer = canonical_kmer(kmer, self.k)
        return self.table.get(kmer)

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="clark-classifier",
            kind="host-hash-table",
            k=self.k,
            canonical=self.canonical,
            batched=False,
            degraded=self.degraded,
        )

    def lookup(self, kmer: int) -> Optional[int]:
        """Deprecated name for :meth:`get` (PR-4 API unification)."""
        warn_deprecated("ClarkClassifier.lookup()", "ClarkClassifier.get()")
        return self.get(kmer)
