"""Software baselines: cache/CPU/GPU models and from-scratch CLARK- and
Kraken-style classifiers with traced memory behaviour.
"""

from .cache import CacheHierarchy, CacheStats, SetAssociativeCache
from .classifier import (
    ClassificationResult,
    ClassificationSummary,
    classify_read,
    classify_read_lca,
    classify_reads,
    kraken_lca_vote,
    majority_vote,
    summarize,
)
from .cpu_model import CpuBaselineModel, CpuModelParams
from .gpu_model import GpuBaselineModel, GpuModelParams
from .hashtable import ChainedHashTable, ClarkClassifier, LookupTrace
from .kraken import (
    BucketLookup,
    KrakenClassifier,
    SignatureSortedIndex,
    minimizer,
)
from .machines import TITAN_X_PASCAL, XEON_E5_2658V4, CpuConfig, GpuConfig
from .sortedlist import (
    SortedKmerList,
    SortedListClassifier,
    SortedListError,
    SortedLookup,
)
from .mlp import BandwidthAnalysis, ideal_machine_analysis, mshr_limited_bandwidth_gbs

__all__ = [
    "CacheHierarchy",
    "CacheStats",
    "SetAssociativeCache",
    "ClassificationResult",
    "ClassificationSummary",
    "classify_read",
    "classify_read_lca",
    "classify_reads",
    "kraken_lca_vote",
    "majority_vote",
    "summarize",
    "CpuBaselineModel",
    "CpuModelParams",
    "GpuBaselineModel",
    "GpuModelParams",
    "ChainedHashTable",
    "ClarkClassifier",
    "LookupTrace",
    "BucketLookup",
    "KrakenClassifier",
    "SignatureSortedIndex",
    "minimizer",
    "SortedKmerList",
    "SortedListClassifier",
    "SortedListError",
    "SortedLookup",
    "TITAN_X_PASCAL",
    "XEON_E5_2658V4",
    "CpuConfig",
    "GpuConfig",
    "BandwidthAnalysis",
    "ideal_machine_analysis",
    "mshr_limited_bandwidth_gbs",
]
