"""Baseline machine configurations (paper Table I) and calibration.

The CPU is the paper's Xeon E5-2658 v4 workstation, the GPU its Pascal
Titan X.  The per-lookup cost constants are *calibrated* — we do not
have the authors' testbed, so the mechanistic models in
:mod:`repro.baselines.cpu_model` / :mod:`repro.baselines.gpu_model` are
anchored so the Sieve-vs-baseline ratios land in the bands the paper
reports (see EXPERIMENTS.md for the per-anchor derivation).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuConfig:
    """Paper Table I workstation."""

    model: str = "Intel Xeon E5-2658 v4"
    cores: int = 14
    threads: int = 24  # Table I lists 24 usable threads
    base_ghz: float = 2.3
    boost_ghz: float = 2.8
    l1_kb: int = 32
    l2_kb: int = 256
    llc_mb: int = 35
    memory: str = "DDR4-2400, 32 GB, 2 channels, 2 ranks"
    #: Package power attributable to k-mer matching (PMC measurement
    #: scaled by the paper's -30 % correction).
    matching_power_w: float = 50.0
    #: Peak memory bandwidth (2 channels x DDR4-2400 x 8 B).
    mem_bandwidth_gbs: float = 38.4
    #: Line-fill buffers / MSHRs per core (Broadwell: 10 L1 fill buffers).
    mshrs_per_core: int = 10
    #: Average DRAM access latency under load, ns.
    mem_latency_ns: float = 85.0


@dataclass(frozen=True)
class GpuConfig:
    """Paper Table I GPU (idealized per Section V: no host transfers,
    dataset always resident)."""

    model: str = "NVIDIA Titan X (Pascal)"
    memory_gb: int = 12
    mem_bandwidth_gbs: float = 480.0
    sms: int = 28
    max_concurrent_loads: int = 28 * 64  # warps able to hold a miss
    mem_latency_ns: float = 400.0
    #: Board power attributable to the kernel (nvprof measurement scaled
    #: by the paper's -50 % correction would give ~125 W; random-access
    #: k-mer kernels keep the memory system saturated, calibrated 220 W).
    matching_power_w: float = 220.0


#: Default instances used by every benchmark.
XEON_E5_2658V4 = CpuConfig()
TITAN_X_PASCAL = GpuConfig()
