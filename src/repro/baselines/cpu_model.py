"""CPU baseline performance/energy model (Kraken2 / CLARK class).

Section II of the paper establishes the mechanism: each k-mer lookup
chases pointers (hash chain) or binary-searches a bucket across a
multi-GB table, so almost every probe misses the LLC, the dependent
accesses cannot overlap (MLP ~ 1), and the per-lookup compute is too
small to hide any of it.  The model charges:

    lookup_ns = probes_per_lookup x effective_miss_penalty_ns / mlp
                + compute_ns_per_lookup

per hardware thread, with all threads running independently (k-mer
matching is embarrassingly parallel across reads).

``probes_per_lookup`` can be *measured* by running a traced classifier
through the cache hierarchy simulator
(:meth:`CpuBaselineModel.from_cache_simulation`), or left at the
calibrated default.  ``effective_miss_penalty_ns`` exceeds raw DRAM
latency because a multi-GB working set also misses the TLB (radix page
walks add DRAM accesses of their own); the default is calibrated so the
Sieve-vs-CPU ratios land in the paper's reported bands (derivation in
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional

from ..sieve.perfmodel import PerfResult, WorkloadStats
from .cache import CacheHierarchy
from .machines import XEON_E5_2658V4, CpuConfig


@dataclass(frozen=True)
class CpuModelParams:
    """Calibrated per-lookup constants (see module docstring)."""

    probes_per_lookup: float = 15.0
    effective_miss_penalty_ns: float = 200.0
    mlp: float = 1.0
    compute_ns_per_lookup: float = 190.0

    def __post_init__(self) -> None:
        if self.probes_per_lookup <= 0 or self.effective_miss_penalty_ns <= 0:
            raise ValueError("probe count and penalty must be positive")
        if self.mlp < 1.0:
            raise ValueError("mlp must be >= 1")
        if self.compute_ns_per_lookup < 0:
            raise ValueError("compute time must be non-negative")


class CpuBaselineModel:
    """Multi-threaded CPU k-mer matching baseline."""

    design = "CPU"

    def __init__(
        self,
        config: Optional[CpuConfig] = None,
        params: Optional[CpuModelParams] = None,
    ) -> None:
        self.config = config or XEON_E5_2658V4
        self.params = params or CpuModelParams()

    def lookup_ns(self) -> float:
        """Per-lookup latency on one hardware thread."""
        p = self.params
        return (
            p.probes_per_lookup * p.effective_miss_penalty_ns / p.mlp
            + p.compute_ns_per_lookup
        )

    def aggregate_ns_per_kmer(self) -> float:
        """Per-lookup latency with all threads busy."""
        return self.lookup_ns() / self.config.threads

    def run(self, workload: WorkloadStats) -> PerfResult:
        """Latency and energy for a workload's full k-mer set."""
        time_s = workload.num_kmers * self.aggregate_ns_per_kmer() * 1e-9
        energy_j = self.config.matching_power_w * time_s
        return PerfResult(
            design=self.design,
            workload=workload.name,
            time_s=time_s,
            energy_j=energy_j,
            breakdown={
                "num_kmers": float(workload.num_kmers),
                "lookup_ns": self.lookup_ns(),
                "threads": float(self.config.threads),
                "aggregate_ns_per_kmer": self.aggregate_ns_per_kmer(),
            },
        )

    @classmethod
    def from_cache_simulation(
        cls,
        traced_lookups: Iterable,
        hierarchy: Optional[CacheHierarchy] = None,
        config: Optional[CpuConfig] = None,
        base_params: Optional[CpuModelParams] = None,
    ) -> "CpuBaselineModel":
        """Calibrate ``probes_per_lookup`` by replaying lookup traces.

        ``traced_lookups`` yields objects with an ``addresses`` tuple
        (from :meth:`ChainedHashTable.traced_lookup` or
        :meth:`SignatureSortedIndex.traced_lookup`).  Each address that
        misses to DRAM counts as one probe-penalty; cache hits are
        folded into the compute term.
        """
        hierarchy = hierarchy or CacheHierarchy()
        lookups = 0
        dram = 0
        for trace in traced_lookups:
            lookups += 1
            for address in trace.addresses:
                if hierarchy.access(address) == "DRAM":
                    dram += 1
        if lookups == 0:
            raise ValueError("no lookups provided for calibration")
        params = base_params or CpuModelParams()
        measured = replace(params, probes_per_lookup=max(dram / lookups, 0.5))
        return cls(config=config, params=measured)
