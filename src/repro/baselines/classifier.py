"""Shared sequence-classification logic (paper Figures 2 and 3).

All k-mer matching engines — the software baselines and the Sieve
device — plug into the same classification loop: slide a window of size
k over the read, look each k-mer up, count votes per taxon, and assign
the read to the taxon with the most hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from ..genomics.sequence import DnaSequence

#: A lookup engine: packed k-mer -> taxon id or None.
LookupFn = Callable[[int], Optional[int]]


@dataclass(frozen=True)
class ClassificationResult:
    """Outcome of classifying one read."""

    read_id: str
    taxon: Optional[int]
    votes: Dict[int, int]
    kmers_total: int
    kmers_hit: int
    true_taxon: Optional[int] = None

    @property
    def hit_rate(self) -> float:
        return self.kmers_hit / self.kmers_total if self.kmers_total else 0.0

    @property
    def correct(self) -> Optional[bool]:
        """Against ground truth, when the read carries one."""
        if self.true_taxon is None:
            return None
        return self.taxon == self.true_taxon


@dataclass
class ClassificationSummary:
    """Aggregate over a read set."""

    reads: int = 0
    classified: int = 0
    correct: int = 0
    with_truth: int = 0
    kmers_total: int = 0
    kmers_hit: int = 0
    taxon_counts: Dict[int, int] = field(default_factory=dict)

    @property
    def classification_rate(self) -> float:
        return self.classified / self.reads if self.reads else 0.0

    @property
    def accuracy(self) -> Optional[float]:
        if not self.with_truth:
            return None
        return self.correct / self.with_truth

    @property
    def kmer_hit_rate(self) -> float:
        return self.kmers_hit / self.kmers_total if self.kmers_total else 0.0


def majority_vote(votes: Dict[int, int]) -> Optional[int]:
    """Taxon with the most k-mer hits; ties break to the smaller id."""
    if not votes:
        return None
    best = max(votes.items(), key=lambda item: (item[1], -item[0]))
    return best[0]


def kraken_lca_vote(votes: Dict[int, int], taxonomy) -> Optional[int]:
    """Kraken's root-to-leaf path scoring (Wood & Salzberg 2014).

    LCA-merged databases map shared k-mers to interior taxa, so a plain
    majority can crown an uninformative ancestor.  Kraken instead scores
    every voted taxon by the hits along its root-to-taxon path and picks
    the deepest maximal scorer — hits at an ancestor support all of its
    descendants.
    """
    if not votes:
        return None
    best_taxon = None
    best_key = None
    for taxon in votes:
        path = taxonomy.lineage(taxon)
        score = sum(votes.get(node, 0) for node in path)
        key = (score, len(path), -taxon)  # deepest max-scorer, stable tie
        if best_key is None or key > best_key:
            best_key = key
            best_taxon = taxon
    return best_taxon


def classify_read_lca(
    read: DnaSequence, k: int, lookup: LookupFn, taxonomy
) -> ClassificationResult:
    """Classify one read with Kraken's path-scoring rule."""
    votes: Dict[int, int] = {}
    total = 0
    hits = 0
    for kmer in read.kmers(k):
        total += 1
        taxon = lookup(kmer)
        if taxon is not None:
            hits += 1
            votes[taxon] = votes.get(taxon, 0) + 1
    return ClassificationResult(
        read_id=read.seq_id,
        taxon=kraken_lca_vote(votes, taxonomy),
        votes=votes,
        kmers_total=total,
        kmers_hit=hits,
        true_taxon=read.taxon_id,
    )


def classify_read(read: DnaSequence, k: int, lookup: LookupFn) -> ClassificationResult:
    """Classify one read with any lookup engine (Figure 2's loop)."""
    votes: Dict[int, int] = {}
    total = 0
    hits = 0
    for kmer in read.kmers(k):
        total += 1
        taxon = lookup(kmer)
        if taxon is not None:
            hits += 1
            votes[taxon] = votes.get(taxon, 0) + 1
    return ClassificationResult(
        read_id=read.seq_id,
        taxon=majority_vote(votes),
        votes=votes,
        kmers_total=total,
        kmers_hit=hits,
        true_taxon=read.taxon_id,
    )


def classify_reads(
    reads: Iterable[DnaSequence], k: int, lookup: LookupFn
) -> List[ClassificationResult]:
    """Classify a read set; returns per-read results."""
    return [classify_read(read, k, lookup) for read in reads]


def summarize(results: Iterable[ClassificationResult]) -> ClassificationSummary:
    """Roll per-read results up into a summary."""
    summary = ClassificationSummary()
    for result in results:
        summary.reads += 1
        summary.kmers_total += result.kmers_total
        summary.kmers_hit += result.kmers_hit
        if result.taxon is not None:
            summary.classified += 1
            summary.taxon_counts[result.taxon] = (
                summary.taxon_counts.get(result.taxon, 0) + 1
            )
        if result.true_taxon is not None:
            summary.with_truth += 1
            if result.correct:
                summary.correct += 1
    return summary
