"""Memory-level-parallelism analysis (paper Section VI-B).

The paper argues that simply adding DRAM bandwidth does not rescue the
CPU baseline: k-mer matching is *latency*-bound because each core's
MSHRs are exhausted by outstanding loads while the bandwidth stays
underutilized.  Even a hypothetical machine where every load is served
concurrently at 40 ns would need "over 215 cores" to match Type-3's
throughput.

This module reproduces that arithmetic so the sensitivity benchmark can
regenerate the claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .machines import XEON_E5_2658V4, CpuConfig


@dataclass(frozen=True)
class BandwidthAnalysis:
    """Outcome of the Section VI-B what-if."""

    achieved_bandwidth_gbs: float
    peak_bandwidth_gbs: float
    bandwidth_utilization: float
    per_core_lookups_per_s: float
    cores_needed_to_match: float


def mshr_limited_bandwidth_gbs(
    config: Optional[CpuConfig] = None, line_bytes: int = 64
) -> float:
    """Per-socket bandwidth achievable with MSHR-limited concurrency.

    Each core can keep ``mshrs_per_core`` misses in flight; each miss
    returns a cache line after ``mem_latency_ns``.
    """
    cfg = config or XEON_E5_2658V4
    per_core = cfg.mshrs_per_core * line_bytes / (cfg.mem_latency_ns * 1e-9)
    return per_core * cfg.cores / 1e9


def ideal_machine_analysis(
    target_qps: float,
    probes_per_lookup: float = 15.0,
    ideal_latency_ns: float = 40.0,
    config: Optional[CpuConfig] = None,
    line_bytes: int = 64,
) -> BandwidthAnalysis:
    """The paper's over-provisioned what-if machine.

    Every outstanding load is served concurrently at ``ideal_latency_ns``
    (infinite MSHRs); a core still performs ``probes_per_lookup``
    *dependent* probes per lookup (the chain cannot be parallelized), so
    its lookup rate is ``1 / (probes x latency)``.  Returns how many such
    cores match ``target_qps`` (Type-3's throughput).
    """
    if target_qps <= 0:
        raise ValueError("target_qps must be positive")
    if probes_per_lookup <= 0 or ideal_latency_ns <= 0:
        raise ValueError("probes and latency must be positive")
    cfg = config or XEON_E5_2658V4
    per_core_qps = 1.0 / (probes_per_lookup * ideal_latency_ns * 1e-9)
    cores_needed = target_qps / per_core_qps
    achieved = mshr_limited_bandwidth_gbs(cfg, line_bytes)
    return BandwidthAnalysis(
        achieved_bandwidth_gbs=achieved,
        peak_bandwidth_gbs=cfg.mem_bandwidth_gbs,
        bandwidth_utilization=min(achieved / cfg.mem_bandwidth_gbs, 1.0),
        per_core_lookups_per_s=per_core_qps,
        cores_needed_to_match=cores_needed,
    )
