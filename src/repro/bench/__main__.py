"""CLI entry point: ``python -m repro.bench``.

Runs the tracked benchmarks, writes ``BENCH_<rev>.json``, and (with
``--baseline``) fails with exit status 1 when any benchmark regresses
past the threshold or its functional counters drift.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from . import (
    BENCHMARKS,
    DEFAULT_THRESHOLD,
    BenchError,
    compare_to_baseline,
    format_results,
    git_revision,
    load_baseline,
    run_benchmarks,
    to_payload,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the tracked simulator benchmarks and check for "
        "wall-time or counter regressions.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke scale (small workloads, skips the slow figure sweep)",
    )
    parser.add_argument(
        "--only",
        help="comma-separated benchmark names to run "
        f"(tracked: {', '.join(BENCHMARKS)})",
    )
    parser.add_argument(
        "--output",
        type=Path,
        help="output JSON path (default: BENCH_<rev>.json in the cwd)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        help="baseline BENCH_*.json to regression-check against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="wall-time regression ratio that fails the run "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for the benchmark fan-out "
        "(default: $SIEVE_JOBS or 1)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    only = args.only.split(",") if args.only else None
    try:
        results = run_benchmarks(quick=args.quick, only=only, jobs=args.jobs)
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_results(results))

    payload = to_payload(results, quick=args.quick)
    output = args.output or Path(f"BENCH_{git_revision()}.json")
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")

    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
            failures = compare_to_baseline(
                results, baseline, threshold=args.threshold
            )
        except BenchError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if failures:
            print(f"REGRESSION vs {args.baseline}:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.baseline} (threshold {args.threshold}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
