"""Benchmark-regression harness for the functional Sieve toolkit.

The functional simulator is the repository's ground truth: every
analytic model is calibrated against counters it produces, so a silent
slowdown there quietly caps how large a configuration the tests and
examples can afford to exercise.  This package pins the hot paths the
batched query engine optimized — database construction, device lookup
(batched and scalar), end-to-end classification, and analytic figure
regeneration — behind small, seeded workloads and records both wall
time and the functional counters each run produces.

Usage::

    python -m repro.bench                 # full workloads
    python -m repro.bench --quick         # CI smoke scale
    python -m repro.bench --baseline benchmarks/BENCH_baseline.json

Each run writes ``BENCH_<rev>.json`` (``<rev>`` is the short git
revision, or ``local`` outside a checkout).  With ``--baseline`` the run
compares itself against a committed reference: any benchmark whose wall
time regresses by more than ``--threshold`` (default 1.5x), or whose
functional counters differ at all, fails the run.  Counters are fully
deterministic (seeded generators end to end), so counter drift is a
functional regression, never noise; wall-time gets the 1.5x band to
absorb machine variation.  See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: JSON schema version for ``BENCH_*.json`` payloads.
SCHEMA_VERSION = 1

#: Default wall-time regression threshold (current / baseline ratio).
DEFAULT_THRESHOLD = 1.5

#: Absolute slack added to the wall-time bound.  Benchmarks that finish
#: in milliseconds would otherwise fail on scheduler jitter alone; a
#: regression must exceed the ratio threshold *and* this many seconds.
WALL_GRACE_S = 0.05


class BenchError(ValueError):
    """Raised on unknown benchmark names or malformed baseline files."""


@dataclass(frozen=True)
class BenchResult:
    """One benchmark run: measured wall time + functional counters.

    ``extras`` carries derived host-timing figures (hit rates, wall
    deltas) that are reported in ``BENCH_*.json`` but — unlike
    ``counters`` — never baseline-compared: they inherit machine noise.
    """

    name: str
    wall_s: float
    counters: Dict[str, int]
    extras: Dict[str, float] = field(default_factory=dict)


#: A benchmark callable: ``fn(quick) -> (measured_wall_s, counters)``
#: or ``fn(quick) -> (measured_wall_s, counters, extras)``.
#: Setup (dataset/device construction that is not the measured path) is
#: excluded from the returned wall time by timing inside the callable.
BenchFn = Callable[[bool], Tuple[float, Dict[str, int]]]


def _dataset(quick: bool, seed: int = 11):
    from ..genomics import build_dataset

    return build_dataset(
        k=13,
        num_species=4 if quick else 6,
        genome_length=400 if quick else 700,
        num_reads=20 if quick else 40,
        read_length=70,
        error_rate=0.005,
        novel_fraction=0.25,
        seed=seed,
    )


def bench_database_build(quick: bool) -> Tuple[float, Dict[str, int]]:
    """Vectorized genome indexing: pack_kmers + canonical + LCA-merge."""
    import numpy as np

    from ..genomics import (
        KmerDatabase,
        balanced_taxonomy,
        phylogenetic_genomes,
    )

    rng = np.random.default_rng(101)
    num_species = 6 if quick else 12
    taxonomy = balanced_taxonomy(num_species)
    genomes = phylogenetic_genomes(
        taxonomy, 1_000 if quick else 5_000, rng
    )
    start = time.perf_counter()
    db = KmerDatabase.from_genomes(
        ((g, g.taxon_id) for g in genomes),
        k=13,
        canonical=True,
        taxonomy=taxonomy,
    )
    wall_s = time.perf_counter() - start
    return wall_s, {
        "genomes": len(genomes),
        "kmers_indexed": len(db),
        "taxa": db.size_stats().num_taxa,
    }


def bench_host_lookup(quick: bool) -> Tuple[float, Dict[str, int]]:
    """Host-side bulk lookup: sorted arrays + ``np.searchsorted``."""
    dataset = _dataset(quick)
    queries = sorted(
        {kmer for read in dataset.reads for kmer in read.kmers(dataset.k)}
    )
    start = time.perf_counter()
    results = dataset.database.query(queries)
    wall_s = time.perf_counter() - start
    hits = sum(1 for r in results if r.hit)
    return wall_s, {"queries": len(queries), "hits": hits}


def _device_lookup(
    quick: bool, batched: bool, kernel: str = "packed"
) -> Tuple[float, Dict[str, int]]:
    from ..sieve import SieveDevice, SubarrayLayout

    dataset = _dataset(quick)
    layout = SubarrayLayout(
        k=dataset.k, row_bits=1152, rows_per_subarray=256, layers=3
    )
    device = SieveDevice.from_database(dataset.database, layout=layout)
    queries = sorted(
        {kmer for read in dataset.reads for kmer in read.kmers(dataset.k)}
    )
    start = time.perf_counter()
    responses = device.query(queries, batched=batched, kernel=kernel)
    wall_s = time.perf_counter() - start
    return wall_s, {
        "queries": device.stats.queries,
        "hits": device.stats.hits,
        "index_filtered": device.stats.index_filtered,
        "row_activations": device.stats.row_activations,
        "write_commands": device.stats.write_commands,
        "batches": device.stats.batches,
        "responses": len(responses),
    }


def bench_device_lookup_batched(quick: bool) -> Tuple[float, Dict[str, int]]:
    """Bit-accurate device lookups through the vectorized batch engine.

    Pinned to the PR-2 ``vector`` kernel: this scenario is both the
    regression guard for that engine and the wall-time denominator the
    ``kernel_matrix`` speedup in ``docs/PERFORMANCE.md`` is quoted
    against.  The bit-packed engine gets its own scenarios below.
    """
    return _device_lookup(quick, batched=True, kernel="vector")


def bench_device_lookup_packed(quick: bool) -> Tuple[float, Dict[str, int]]:
    """Same lookups through the bit-packed ``packed`` kernel.

    Counters must match ``device_lookup_batched`` exactly (the packed
    engine is bit-identical); the wall-time gap between the two
    scenarios is the end-to-end win from ``repro.sieve.kernels``.
    """
    return _device_lookup(quick, batched=True, kernel="packed")


def bench_device_lookup_scalar(quick: bool) -> Tuple[float, Dict[str, int]]:
    """Same lookups through the scalar command-by-command path.

    Tracked so the scalar reference does not rot: its counters must stay
    identical to the batched run's, and its wall time bounds how long
    the equivalence tests can afford to be.
    """
    return _device_lookup(quick, batched=False)


def bench_kernel_matrix(quick: bool) -> Tuple[float, Dict[str, int]]:
    """Bit-packed first-divergence kernel in isolation.

    Packs the bench dataset's sorted k-mers into the device's MSB-first
    transposed Region-1 layout, packs the query reads the same way, and
    times the sweep the packed match engine runs per batch: with a
    single-word layout (every ``k <= 32`` under pure numpy) that is
    ``pack_bit_columns`` + one XOR pass + the
    :func:`repro.sieve.kernels.segment_divergence` min-trick reduction
    + the hit ``argmin``; otherwise (multi-word rows, or numba forced
    via ``SIEVE_KERNEL``) the full ``first_divergence`` matrix.  The
    recorded wall time therefore tracks the kernel actually deployed,
    and its ratio to ``device_lookup_batched`` is the kernel speedup
    quoted in ``docs/PERFORMANCE.md``.  Counters are pure functions of
    the seeded dataset, identical across implementations.
    """
    import numpy as np

    from ..sieve import kernels

    dataset = _dataset(quick)
    rows = 2 * dataset.k
    segment_size = 64
    refs = np.fromiter(
        dataset.database.sorted_kmers(),
        dtype=np.uint64,
        count=len(dataset.database),
    )
    queries = np.array(
        sorted(
            {kmer for read in dataset.reads for kmer in read.kmers(dataset.k)}
        ),
        dtype=np.uint64,
    )
    shifts = np.arange(rows - 1, -1, -1, dtype=np.uint64)[:, None]
    one = np.uint64(1)
    ref_bits = ((refs[None, :] >> shifts) & one).astype(np.uint8)
    query_bits = ((queries[None, :] >> shifts) & one).astype(np.uint8)
    seg_starts = np.arange(0, refs.size, segment_size)
    impl = kernels.default_implementation()
    single_word = kernels.words_for(rows) == 1 and impl == "numpy"
    start = time.perf_counter()
    ref_words = kernels.pack_bit_columns(ref_bits)
    query_words = kernels.pack_bit_columns(query_bits)
    if single_word:
        xor = query_words[0][:, None] ^ ref_words[0][None, :]
        seg_div = kernels.segment_divergence(xor, rows, seg_starts)
        first_hit = np.argmin(xor, axis=1)
    else:
        div = kernels.first_divergence(ref_words, query_words, rows, impl=impl)
        seg_div = np.maximum.reduceat(div, seg_starts, axis=1)
        first_hit = (div == rows).argmax(axis=1)
    wall_s = time.perf_counter() - start
    hit_mask = (seg_div == rows).any(axis=1)
    return wall_s, {
        "references": int(refs.size),
        "queries": int(queries.size),
        "rows": rows,
        "words": int(ref_words.shape[0]),
        "segments": int(seg_starts.size),
        "hits": int(hit_mask.sum()),
        "first_hit_sum": int(first_hit[hit_mask].sum()),
        "divergence_sum": int(seg_div.sum()),
    }


def bench_db_mmap_load(quick: bool) -> Tuple[float, Dict[str, int]]:
    """Zero-copy database open: mmap segments + verify + bulk lookup.

    Saves the bench database as a segment directory (setup, untimed),
    then times the serving-side path a fleet worker or service shard
    pays: :meth:`KmerDatabase.open_mmap` with content-hash verification
    followed by a bulk query of every read k-mer.  Counters pin the
    manifest shape and lookup results.
    """
    import tempfile

    from .. import serialization
    from ..genomics import KmerDatabase

    dataset = _dataset(quick)
    queries = sorted(
        {kmer for read in dataset.reads for kmer in read.kmers(dataset.k)}
    )
    with tempfile.TemporaryDirectory() as tmp:
        seg_dir = Path(tmp) / "segments"
        manifest = serialization.save_segments(dataset.database, seg_dir)
        start = time.perf_counter()
        db = KmerDatabase.open_mmap(seg_dir, verify=True)
        results = db.query(queries)
        wall_s = time.perf_counter() - start
        records = len(db)
    hits = sum(1 for r in results if r.hit)
    return wall_s, {
        "records": records,
        "segments": len(manifest["segments"]),
        "queries": len(queries),
        "hits": hits,
    }


def bench_classifier_e2e(quick: bool) -> Tuple[float, Dict[str, int]]:
    """End-to-end read classification against the Sieve device."""
    from ..baselines import classify_reads, summarize
    from ..sieve import SieveDevice, SubarrayLayout

    dataset = _dataset(quick)
    layout = SubarrayLayout(
        k=dataset.k, row_bits=1152, rows_per_subarray=256, layers=3
    )
    device = SieveDevice.from_database(dataset.database, layout=layout)
    start = time.perf_counter()
    unique = sorted(
        {kmer for read in dataset.reads for kmer in read.kmers(dataset.k)}
    )
    answers = {r.query: r.payload for r in device.query(unique)}
    results = classify_reads(dataset.reads, dataset.k, answers.get)
    wall_s = time.perf_counter() - start
    summary = summarize(results)
    return wall_s, {
        "reads": summary.reads,
        "classified": summary.classified,
        "kmers_total": summary.kmers_total,
        "kmers_hit": summary.kmers_hit,
        "row_activations": device.stats.row_activations,
    }


def bench_figure_regen(quick: bool) -> Tuple[float, Dict[str, int]]:
    """Analytic figure regeneration (perf-model evaluation loop)."""
    from ..experiments.figures import fig13_row_vs_col, fig16_salp_sweep

    start = time.perf_counter()
    fig13 = fig13_row_vs_col()
    rows = len(fig13.rows)
    if not quick:
        rows += len(fig16_salp_sweep().rows)
    wall_s = time.perf_counter() - start
    return wall_s, {"table_rows": rows}


def _serve_trace(trace, database, *, dedup=False, cache_capacity=0):
    """Replay ``trace`` against a fresh 2-shard Sieve service.

    Deterministic mode (zero linger, pre-enqueued, single-threaded
    loop): batch composition — and with it every counter — is a pure
    function of the trace and the config.  Returns ``(responses,
    stats, measured_wall_s)``.
    """
    from ..service import ClassificationService, ServiceConfig
    from ..sieve import SieveDevice, SubarrayLayout
    from ..workloads import replay_trace

    layout = SubarrayLayout(
        k=trace.k, row_bits=1152, rows_per_subarray=256, layers=3
    )
    config = ServiceConfig(
        num_shards=2,
        max_batch_kmers=128,
        max_linger_s=0.0,
        queue_depth=len(trace),
        dedup=dedup,
        cache_capacity=cache_capacity,
    )
    backends = [
        SieveDevice.from_database(database, layout=layout)
        for _ in range(config.num_shards)
    ]
    service = ClassificationService(backends, config)
    start = time.perf_counter()
    responses = replay_trace(service, trace)
    wall_s = time.perf_counter() - start
    stats = service.stats()
    stats["device"] = {
        "row_activations": sum(
            w.backend.stats.row_activations for w in service.shards
        ),
        "write_commands": sum(
            w.backend.stats.write_commands for w in service.shards
        ),
    }
    return responses, stats, wall_s


def bench_service_load(quick: bool) -> Tuple[float, Dict[str, int]]:
    """Async classification service end-to-end (``repro.service``).

    The dataset's reads are frozen into a :class:`repro.workloads.Trace`
    (all arrivals at t=0, matching the original pre-enqueued stream)
    and replayed through :func:`repro.workloads.replay_trace` in the
    service's deterministic mode, so batch composition — and with it
    every counter — is a pure function of the seeded dataset.  Wall
    time covers the full serve: dispatch, coalesced device batches,
    response slicing.
    """
    from ..workloads import Trace, TraceRequest

    dataset = _dataset(quick)
    trace = Trace(
        k=dataset.k,
        seed=dataset.seed,
        label="service-load",
        requests=tuple(
            TraceRequest(
                seq_id=read.seq_id,
                bases=read.bases,
                taxon_id=read.taxon_id,
                arrival_s=0.0,
            )
            for read in dataset.reads
        ),
    )
    responses, stats, wall_s = _serve_trace(trace, dataset.database)
    counters = stats["metrics"]["counters"]
    return wall_s, {
        "requests": len(responses),
        "batches": counters["batches_total"],
        "kmers": counters["kmers_total"],
        "hits": counters["hits_total"],
        "rejected": counters.get("rejected_total", 0),
        "classified": sum(
            1 for r in responses if r.classification.taxon is not None
        ),
        "row_activations": stats["device"]["row_activations"],
        "write_commands": stats["device"]["write_commands"],
    }


def bench_service_cached(quick: bool) -> Tuple[float, Dict[str, int]]:
    """Hot-k-mer cache + dedup vs the uncached dispatcher.

    Generates a seeded zipfian bursty trace (the skewed traffic the
    cache exploits; ``repro.workloads``), replays it twice — once
    uncached, once with dedup + a bounded LFU result cache — and
    verifies every classification is bit-identical (``mismatches`` is
    baseline-pinned at 0).  The deterministic counters record the
    cache's work split and the simulated-device-time saving; host-wall
    figures (noise-prone) go in ``extras``.
    """
    dataset = _dataset(quick)
    from ..workloads import generate_trace

    trace = generate_trace(
        dataset,
        60 if quick else 160,
        zipf_s=1.4,
        read_length=70,
        error_rate=0.005,
        novel_fraction=0.1,
        seed=23,
        label="bench-zipf",
    )
    uncached, stats_u, wall_u = _serve_trace(trace, dataset.database)
    cached, stats_c, wall_c = _serve_trace(
        trace, dataset.database, dedup=True, cache_capacity=512
    )
    mismatches = sum(
        1
        for a, b in zip(uncached, cached)
        if a.classification != b.classification
    )
    cache = stats_c["cache"]
    sim_u = int(stats_u["clocks"]["sim_time_ns"])
    sim_c = int(stats_c["clocks"]["sim_time_ns"])
    counters = {
        "requests": len(cached),
        "kmers": cache["lookup_kmers"],
        "cache_hit_kmers": cache["hit_kmers"],
        "dedup_kmers": cache["dedup_kmers"],
        "device_kmers": cache["device_kmers"],
        "insertions": cache["insertions"],
        "evictions": cache["evictions"],
        "sim_time_ns_uncached": sim_u,
        "sim_time_ns_cached": sim_c,
        "sim_time_ns_saved": sim_u - sim_c,
        "mismatches": mismatches,
    }
    extras = {
        "hit_rate": cache["hit_rate"],
        "wall_uncached_s": wall_u,
        "wall_cached_s": wall_c,
        "wall_saved_s": wall_u - wall_c,
        "cache_saved_wall_ms": cache["saved_wall_ms"],
    }
    return wall_u + wall_c, counters, extras


def bench_fault_injection(quick: bool) -> Tuple[float, Dict[str, int]]:
    """Device lookups under an active seeded fault model (``repro.faults``).

    Builds one clean and one fault-injected Sieve device from the same
    dataset, replays the same batched query stream through both, and
    counts answer divergence.  Every counter is a pure function of the
    content-hashed fault seed, so counter drift here means the fault
    schedule (or the device's behavior under it) changed.  Wall time
    covers the faulted device's query pass — the hot-path cost of
    having the injector seam threaded through the DRAM model.
    """
    from ..faults import FaultInjector, FaultModel, fault_injection
    from ..sieve import SieveDevice, SubarrayLayout

    dataset = _dataset(quick)
    layout = SubarrayLayout(
        k=dataset.k, row_bits=1152, rows_per_subarray=256, layers=3
    )
    clean = SieveDevice.from_database(dataset.database, layout=layout)
    injector = FaultInjector(
        FaultModel.seeded("bench-fault", bit_flip_rate=2e-4)
    )
    with fault_injection(injector):
        faulted = SieveDevice.from_database(dataset.database, layout=layout)
    queries = sorted(
        {kmer for read in dataset.reads for kmer in read.kmers(dataset.k)}
    )
    baseline = clean.query(queries)
    start = time.perf_counter()
    responses = faulted.query(queries)
    wall_s = time.perf_counter() - start
    diverged = sum(
        1
        for a, b in zip(baseline, responses)
        if (a.hit, a.payload) != (b.hit, b.payload)
    )
    return wall_s, {
        "queries": len(queries),
        "loads": injector.stats.loads,
        "bits_flipped": injector.stats.bits_flipped,
        "diverged": diverged,
        "degraded": int(faulted.capabilities().degraded),
        "hits": faulted.stats.hits,
    }


def _mapping_setup(quick: bool, extension: str):
    """Shared setup for the read-mapping scenarios (untimed)."""
    from ..mapping import MappingConfig, ReadMapper, SeedExtender, SeedIndex
    from ..sieve import SieveDevice, SubarrayLayout

    dataset = _dataset(quick)
    layout = SubarrayLayout(
        k=dataset.k, row_bits=1152, rows_per_subarray=256, layers=3
    )
    device = SieveDevice.from_database(dataset.database, layout=layout)
    extender = SeedExtender(
        SeedIndex.from_genomes(dataset.genomes, dataset.k),
        dataset.genomes,
        MappingConfig(band=3, max_edits=3, extension=extension),
    )
    return dataset, device, ReadMapper(device, extender)


def bench_read_mapping(quick: bool) -> Tuple[float, Dict[str, int]]:
    """Seed-filter-and-extend read mapping, host-side extension.

    The full pipeline of docs/MAPPING.md over the bench dataset: the
    Sieve device filters every read k-mer, the host seed index groups
    survivors into diagonal candidates, and banded semi-global
    alignment verifies them.  Counters pin the mapped/candidate/DP-cell
    totals (pure functions of the seeded dataset) plus the analytic
    host cost — so both the pipeline's answers *and* its cost model
    are regression-guarded.  Wall time covers the whole mapping pass.
    """
    dataset, device, mapper = _mapping_setup(quick, "host")
    start = time.perf_counter()
    results = mapper.map_reads(dataset.reads)
    wall_s = time.perf_counter() - start
    stats = mapper.extender.stats
    return wall_s, {
        "reads": stats.reads,
        "mapped": stats.mapped,
        "seed_hits": stats.seed_hits,
        "candidates": stats.candidates,
        "dp_cells": stats.dp_cells,
        "positions_sum": sum(r.position for r in results if r.mapped),
        "row_activations": device.stats.row_activations,
        "host_time_ns": int(mapper.extender.cost_model.stats.time_ns),
    }


def bench_read_mapping_insitu(quick: bool) -> Tuple[float, Dict[str, int]]:
    """Same mapping pass, extension costed through the DRAM ledger.

    Answers must match ``read_mapping`` exactly (the extension variants
    share one aligner); what changes is the price: candidate windows
    stream through the open-page :class:`repro.dram.memsys.MemorySystem`
    and the per-cell cost is in-DRAM op time.  The ledger's
    access/row-hit counters are deterministic (candidate schedule is a
    pure function of the dataset), so they are baseline-pinned too.
    """
    dataset, device, mapper = _mapping_setup(quick, "insitu")
    start = time.perf_counter()
    results = mapper.map_reads(dataset.reads)
    wall_s = time.perf_counter() - start
    stats = mapper.extender.stats
    ledger = mapper.extender.cost_model.memsys.stats
    return wall_s, {
        "reads": stats.reads,
        "mapped": stats.mapped,
        "seed_hits": stats.seed_hits,
        "candidates": stats.candidates,
        "dp_cells": stats.dp_cells,
        "positions_sum": sum(r.position for r in results if r.mapped),
        "ledger_accesses": ledger.accesses,
        "ledger_row_hits": ledger.row_hits,
        "insitu_time_ns": int(mapper.extender.cost_model.stats.time_ns),
    }


#: Registry of tracked benchmarks, in report order.
BENCHMARKS: Dict[str, BenchFn] = {
    "database_build": bench_database_build,
    "host_lookup": bench_host_lookup,
    "device_lookup_batched": bench_device_lookup_batched,
    "device_lookup_packed": bench_device_lookup_packed,
    "device_lookup_scalar": bench_device_lookup_scalar,
    "kernel_matrix": bench_kernel_matrix,
    "db_mmap_load": bench_db_mmap_load,
    "classifier_e2e": bench_classifier_e2e,
    "figure_regen": bench_figure_regen,
    "service_load": bench_service_load,
    "service_cached": bench_service_cached,
    "fault_injection": bench_fault_injection,
    "read_mapping": bench_read_mapping,
    "read_mapping_insitu": bench_read_mapping_insitu,
}


def git_revision() -> str:
    """Short git revision of the working tree, or ``local``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return "local"
    rev = proc.stdout.strip()
    return rev if rev else "local"


def run_benchmarks(
    quick: bool = False,
    only: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
) -> List[BenchResult]:
    """Run (a subset of) the registry; returns results in registry order.

    ``jobs`` fans the benchmarks out over fleet worker processes
    (``None`` uses the fleet default: ``--jobs``/``SIEVE_JOBS``, else
    1).  Counters are unaffected by the worker count (they are
    seeded-deterministic); wall times are each measured inside their
    own process.
    """
    from ..fleet.core import run_jobs
    from ..fleet.jobs import BenchJob

    names = list(BENCHMARKS) if only is None else list(only)
    unknown = [name for name in names if name not in BENCHMARKS]
    if unknown:
        raise BenchError(
            f"unknown benchmark(s) {unknown}; tracked: {list(BENCHMARKS)}"
        )
    payloads = run_jobs(
        [BenchJob(name=name, quick=quick) for name in names],
        max_workers=jobs,
    )
    return [
        BenchResult(
            name=p["name"],
            wall_s=p["wall_s"],
            counters=dict(p["counters"]),
            extras=dict(p.get("extras", {})),
        )
        for p in payloads
    ]


def to_payload(results: Sequence[BenchResult], quick: bool) -> Dict[str, object]:
    """Serialize results into the ``BENCH_*.json`` schema."""
    return {
        "schema": SCHEMA_VERSION,
        "rev": git_revision(),
        "quick": quick,
        "benchmarks": {
            r.name: (
                {
                    "wall_s": r.wall_s,
                    "counters": dict(r.counters),
                    "extras": dict(r.extras),
                }
                if r.extras
                else {"wall_s": r.wall_s, "counters": dict(r.counters)}
            )
            for r in results
        },
    }


def load_baseline(path: Path) -> Dict[str, object]:
    """Load and structurally validate a baseline JSON payload."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchError(f"cannot read baseline {path}: {exc}") from None
    if not isinstance(payload, dict) or "benchmarks" not in payload:
        raise BenchError(f"baseline {path} is not a bench payload")
    return payload


def compare_to_baseline(
    results: Sequence[BenchResult],
    baseline: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Regression check; returns failure descriptions (empty = pass).

    Wall time fails above ``threshold`` x the baseline plus
    :data:`WALL_GRACE_S`; counters fail on any difference (they are
    seeded-deterministic).  Benchmarks absent
    from the baseline are reported so the baseline gets refreshed when
    the registry grows.
    """
    if threshold <= 1.0:
        raise BenchError(f"threshold must be > 1.0, got {threshold}")
    failures = []
    recorded = baseline["benchmarks"]
    for result in results:
        entry = recorded.get(result.name) if isinstance(recorded, dict) else None
        if not isinstance(entry, dict):
            failures.append(
                f"{result.name}: missing from baseline (refresh the baseline)"
            )
            continue
        base_wall_s = float(entry.get("wall_s", 0.0))
        bound_s = threshold * base_wall_s + WALL_GRACE_S
        if base_wall_s > 0.0 and result.wall_s > bound_s:
            ratio = result.wall_s / base_wall_s
            failures.append(
                f"{result.name}: wall {result.wall_s:.3f}s is "
                f"{ratio:.2f}x baseline {base_wall_s:.3f}s "
                f"(threshold {threshold:.2f}x)"
            )
        base_counters = entry.get("counters")
        if base_counters != result.counters:
            failures.append(
                f"{result.name}: counters changed: baseline "
                f"{base_counters!r} != current {result.counters!r}"
            )
    return failures


def format_results(results: Sequence[BenchResult]) -> str:
    """Aligned text report of a run."""
    lines = [f"{'benchmark':<24} {'wall_s':>9}  counters"]
    for r in results:
        counters = ", ".join(f"{k}={v}" for k, v in r.counters.items())
        lines.append(f"{r.name:<24} {r.wall_s:>9.4f}  {counters}")
        if r.extras:
            extras = ", ".join(f"{k}={v:.4g}" for k, v in r.extras.items())
            lines.append(f"{'':<24} {'':>9}  [{extras}]")
    return "\n".join(lines)
