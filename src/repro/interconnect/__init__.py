"""System integration: PCIe packet/queue model and DIMM power/bandwidth
envelope, with deployment recommendation (paper Section IV-C, VI-C).
"""

from .dimm import (
    DIMM_BANDWIDTH_GBS,
    DIMM_POWER_W_PER_GB,
    DeploymentRequirement,
    DimmEnvelope,
    DimmError,
    recommend_interface,
)
from .pcie import (
    BANK_REQUEST_BUFFER,
    PCIE3_X8,
    PCIE4_X16,
    PCIE_PACKET_PAYLOAD_BYTES,
    REQUEST_BYTES,
    RESPONSE_BYTES,
    PcieError,
    PcieLink,
    PcieModel,
    PcieModelParams,
)

__all__ = [
    "DIMM_BANDWIDTH_GBS",
    "DIMM_POWER_W_PER_GB",
    "DeploymentRequirement",
    "DimmEnvelope",
    "DimmError",
    "recommend_interface",
    "BANK_REQUEST_BUFFER",
    "PCIE3_X8",
    "PCIE4_X16",
    "PCIE_PACKET_PAYLOAD_BYTES",
    "REQUEST_BYTES",
    "RESPONSE_BYTES",
    "PcieError",
    "PcieLink",
    "PcieModel",
    "PcieModelParams",
]
