"""DIMM form-factor envelope and deployment recommendation
(paper Section IV-C).

A DDR4 DIMM slot supplies roughly 0.37 W/GB of power and 25 GB/s of
channel bandwidth — enough for Type-1, while Type-2 needs at least
PCIe 3.0 x8 and Type-3 at least PCIe 4.0 x16.  This module reproduces
that sizing from a design's query rate and power draw rather than
hard-coding the conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

from .pcie import PCIE3_X8, PCIE4_X16, PcieLink, REQUEST_BYTES

#: Paper constants.
DIMM_POWER_W_PER_GB = 0.37
DIMM_BANDWIDTH_GBS = 25.0


class DimmError(ValueError):
    """Raised on invalid envelope parameters."""


@dataclass(frozen=True)
class DeploymentRequirement:
    """What a design at a given operating point needs from its slot."""

    device_qps: float
    power_w: float
    capacity_gb: float

    @property
    def bandwidth_gbs(self) -> float:
        """Request traffic the interface must carry (per direction)."""
        return self.device_qps * REQUEST_BYTES / 1e9


@dataclass(frozen=True)
class DimmEnvelope:
    """A DIMM slot's power and bandwidth budget for a given capacity."""

    capacity_gb: float

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0:
            raise DimmError("capacity must be positive")

    @property
    def power_budget_w(self) -> float:
        return DIMM_POWER_W_PER_GB * self.capacity_gb

    @property
    def bandwidth_gbs(self) -> float:
        return DIMM_BANDWIDTH_GBS

    def supports(self, req: DeploymentRequirement) -> bool:
        return (
            req.power_w <= self.power_budget_w
            and req.bandwidth_gbs <= self.bandwidth_gbs
        )


def recommend_interface(req: DeploymentRequirement) -> str:
    """Smallest interface satisfying a requirement (Section IV-C table).

    Tries DIMM first, then PCIe 3.0 x8, then PCIe 4.0 x16.
    """
    if DimmEnvelope(req.capacity_gb).supports(req):
        return "DIMM"
    for link in (PCIE3_X8, PCIE4_X16):
        if req.bandwidth_gbs <= link.effective_gbs:
            return link.name
    raise DimmError(
        f"no supported interface carries {req.bandwidth_gbs:.1f} GB/s"
    )


def link_for(name: str) -> PcieLink:
    """Parse 'PCIe G.0 xN' back into a link (helper for the harness)."""
    parts = name.split()
    if len(parts) != 3 or not parts[2].startswith("x"):
        raise DimmError(f"not a PCIe interface name: {name!r}")
    return PcieLink(int(parts[1].split(".")[0]), int(parts[2][1:]))
