"""PCIe system-integration model (paper Section IV-C and VI-C).

Type-2/3 Sieve devices attach over PCIe with a packet-based protocol:
12-byte k-mer requests, 340 requests per 4 KB PCIe packet, a 24-packet
input queue sized to saturate a 32 GB device, and a response-ready
queue batching completions back to the host.  The paper measures the
whole arrangement at 4.6-6.7 % latency overhead on PCIe 4.0 x16.

The model charges a fixed protocol/driver overhead plus a
utilization-dependent queueing term, and reports the link utilization
each workload actually needs — which is also what decides the
deployment recommendation (DIMM vs PCIe generation) in
:mod:`repro.interconnect.dimm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict

#: Paper constants (Section IV-C).
REQUEST_BYTES = 12
RESPONSE_BYTES = 12
PCIE_PACKET_PAYLOAD_BYTES = 4096
REQUESTS_PER_PACKET = PCIE_PACKET_PAYLOAD_BYTES // REQUEST_BYTES  # 341 -> 340
BANK_REQUEST_BUFFER = 64


class PcieError(ValueError):
    """Raised on invalid link parameters."""


@dataclass(frozen=True)
class PcieLink:
    """One PCIe link: generation + lane count.

    ``effective_gbs`` is per-direction payload bandwidth after encoding
    overhead (PCIe is full duplex, so requests and responses do not
    share it).
    """

    generation: int
    lanes: int

    #: Per-lane effective payload bandwidth by generation, GB/s.
    #: Frozen: class-level state is shared across instances and forks.
    _PER_LANE = MappingProxyType({3: 0.985, 4: 1.969, 5: 3.938})

    def __post_init__(self) -> None:
        if self.generation not in self._PER_LANE:
            raise PcieError(f"unsupported PCIe generation {self.generation}")
        if self.lanes not in (1, 2, 4, 8, 16):
            raise PcieError(f"invalid lane count {self.lanes}")

    @property
    def effective_gbs(self) -> float:
        return self._PER_LANE[self.generation] * self.lanes

    @property
    def name(self) -> str:
        return f"PCIe {self.generation}.0 x{self.lanes}"


PCIE3_X8 = PcieLink(3, 8)
PCIE4_X16 = PcieLink(4, 16)


@dataclass(frozen=True)
class PcieModelParams:
    """Calibrated overhead constants (land in the paper's 4.6-6.7 %)."""

    fixed_overhead: float = 0.046  # driver/DMA/interrupt handling
    queueing_slope: float = 0.021  # extra overhead at full utilization


class PcieModel:
    """Overhead and queue arithmetic for a Sieve-on-PCIe deployment."""

    def __init__(
        self,
        link: PcieLink = PCIE4_X16,
        params: PcieModelParams = PcieModelParams(),
    ) -> None:
        self.link = link
        self.params = params

    def utilization(self, device_qps: float) -> float:
        """Per-direction link utilization at a device query rate."""
        if device_qps < 0:
            raise PcieError("device_qps must be non-negative")
        needed = device_qps * max(REQUEST_BYTES, RESPONSE_BYTES)
        return needed / (self.link.effective_gbs * 1e9)

    def overhead_fraction(self, device_qps: float) -> float:
        """Latency overhead PCIe adds to the ideal dispatch (Section VI-C)."""
        util = self.utilization(device_qps)
        if util >= 1.0:
            raise PcieError(
                f"{self.link.name} saturated: needs {util:.2f}x its bandwidth"
            )
        return self.params.fixed_overhead + self.params.queueing_slope * util

    def sustainable_qps(self) -> float:
        """Maximum request rate the link can carry."""
        return self.link.effective_gbs * 1e9 / max(REQUEST_BYTES, RESPONSE_BYTES)

    @staticmethod
    def queue_depth_packets(total_banks: int) -> int:
        """Input-queue depth that saturates the device (Section IV-C):

        depth x 340 requests/packet ~ banks x 64 requests/bank.
        """
        if total_banks <= 0:
            raise PcieError("total_banks must be positive")
        requests = total_banks * BANK_REQUEST_BUFFER
        return -(-requests // 340)

    def summary(self, device_qps: float) -> Dict[str, float]:
        """All derived quantities for reporting."""
        return {
            "link_gbs": self.link.effective_gbs,
            "utilization": self.utilization(device_qps),
            "overhead_fraction": self.overhead_fraction(device_qps),
            "sustainable_qps": self.sustainable_qps(),
        }
