"""Self-checking demo of the mapping service request type.

Serves a seeded read set through :meth:`ClassificationService.
submit_mapping` — optionally fronting a multi-process cluster backend —
and verifies every mapping answer bit-for-bit against the sequential
scalar reference pipeline (database filter + the same extender
config).  Exits non-zero on any mismatch, so CI's ``mapping-smoke``
job is a real end-to-end correctness gate, not a liveness probe.

Usage::

    python -m repro.mapping --requests 200 --cluster-workers 2 \
        --metrics-json mapping-metrics.json

``SIEVE_SANITIZE=1`` additionally installs the ScheduleSanitizer, which
audits the mapping requests' admit/coalesce/execute/complete schedule
exactly like classification traffic (the k-mer leg is the same path).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from .pipeline import MappingConfig, ReadMapper, SeedExtender
from .seeds import SeedIndex


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.mapping",
        description="Self-checking read-mapping service demo "
        "(docs/MAPPING.md)",
    )
    parser.add_argument(
        "--requests", type=int, default=200, help="reads to map"
    )
    parser.add_argument("--k", type=int, default=11, help="seed length")
    parser.add_argument(
        "--band", type=int, default=3, help="extension band / edit budget"
    )
    parser.add_argument(
        "--extension",
        choices=("host", "insitu"),
        default="host",
        help="extension cost model (answers are identical)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="in-process device shards (ignored with --cluster-workers)",
    )
    parser.add_argument(
        "--cluster-workers",
        type=int,
        default=0,
        help="serve the filter from this many forked cluster workers",
    )
    parser.add_argument(
        "--dedup",
        action="store_true",
        help="enable cross-request k-mer dedup in the dispatcher",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=0,
        help="hot-k-mer result cache capacity (0 = off)",
    )
    parser.add_argument("--seed", type=int, default=33, help="dataset seed")
    parser.add_argument(
        "--metrics-json",
        type=Path,
        default=None,
        help="write the service stats payload (mapping section included)",
    )
    return parser


async def _serve(service, reads) -> List:
    await service.start()
    futures = [service.submit_mapping(read) for read in reads]
    responses = await asyncio.gather(*futures)
    await service.stop(drain=True)
    return list(responses)


def main(argv: Optional[List[str]] = None) -> int:
    from ..analysiskit import enable_schedule_from_env
    from ..genomics.synthetic import build_dataset
    from ..service import ClassificationService
    from ..service.config import ClusterConfig, ServiceConfig

    args = build_parser().parse_args(argv)
    enable_schedule_from_env()

    dataset = build_dataset(
        k=args.k,
        num_species=4,
        genome_length=600,
        num_reads=args.requests,
        read_length=60,
        error_rate=0.02,
        novel_fraction=0.1,
        seed=args.seed,
    )
    seed_index = SeedIndex.from_genomes(dataset.genomes, args.k)
    mapping_config = MappingConfig(
        band=args.band, max_edits=args.band, extension=args.extension
    )

    # Sequential scalar reference: database filter + identical extender
    # policy.  This is the answer the service must reproduce exactly.
    reference = ReadMapper(
        dataset.database,
        SeedExtender(seed_index, dataset.genomes, mapping_config),
    ).map_reads(dataset.reads)
    reference_payloads = [r.to_payload() for r in reference]

    extender = SeedExtender(seed_index, dataset.genomes, mapping_config)
    scratch: Optional[tempfile.TemporaryDirectory] = None
    cluster_backend = None
    try:
        if args.cluster_workers > 0:
            from ..cluster import ClusterBackend
            from ..serialization import save_segments

            scratch = tempfile.TemporaryDirectory(prefix="sieve-mapdemo-")
            save_segments(dataset.database, scratch.name)
            cluster_backend = ClusterBackend(
                scratch.name, ClusterConfig(workers=args.cluster_workers)
            )
            backends = [cluster_backend]
            topology = f"cluster x{args.cluster_workers} workers"
        else:
            from ..sieve.device import SieveDevice

            backends = [
                SieveDevice.from_database(dataset.database)
                for _ in range(args.shards)
            ]
            topology = f"{args.shards} device shard(s)"
        config = ServiceConfig(
            num_shards=len(backends),
            max_linger_s=0.0,
            queue_depth=max(args.requests, 64),
            dedup=args.dedup,
            cache_capacity=args.cache_capacity,
        )
        service = ClassificationService(backends, config, extender=extender)
        responses = asyncio.run(_serve(service, dataset.reads))
        stats = service.stats()
    finally:
        if cluster_backend is not None:
            cluster_backend.close()
        if scratch is not None:
            scratch.cleanup()

    served_payloads = [r.mapping.to_payload() for r in responses]
    mismatches = sum(
        1
        for got, want in zip(served_payloads, reference_payloads)
        if got != want
    )
    mapped = sum(1 for p in served_payloads if p["mapped"])
    extension = stats["mapping"]["extension"]
    print(
        f"mapped {mapped}/{len(served_payloads)} reads via {topology} "
        f"(k={args.k}, band={args.band}, extension={args.extension})"
    )
    print(
        f"extend stage: {stats['mapping']['candidates']} candidates, "
        f"{stats['mapping']['dp_cells']} DP cells, "
        f"{extension['time_ns']:.0f} modelled ns"
    )
    if args.metrics_json is not None:
        stats["demo"] = {
            "topology": topology,
            "requests": len(served_payloads),
            "mapped": mapped,
            "mismatches": mismatches,
        }
        args.metrics_json.write_text(json.dumps(stats, indent=2) + "\n")
        print(f"metrics -> {args.metrics_json}")
    if mismatches:
        print(
            f"FAIL: {mismatches} mapping answer(s) diverged from the "
            "scalar reference"
        )
        return 1
    print("self-check OK: service mapping == scalar reference, bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
