"""Seed index: exact k-mer -> reference location lookup for extension.

The Sieve device (or any other :class:`repro.api.QueryBackend`) answers
only *membership* — "does this k-mer occur anywhere in the reference?".
That is exactly the seed-location *filter* role compute-in-memory
hardware plays in published read-mapping stacks: the filter prunes the
read's k-mers down to the few that can seed an alignment, and a small
host-side index then resolves *where* those survivors occur.

:class:`SeedIndex` is that host-side structure.  It is a CSR-style
sorted k-mer table over the reference genomes:

* ``_keys``     — distinct packed k-mers, ascending (``uint64``)
* ``_starts``   — CSR offsets into the occurrence arrays (``len+1``)
* ``_genomes``  — genome index per occurrence (``int32``)
* ``_positions``— 0-based position per occurrence (``int64``)

Occurrences of one k-mer are stored in (genome, position) order, so
every lookup is deterministic.  The index is *forward-strand*: Sieve
backends built with canonical k-mers answer membership for either
strand and therefore act as a conservative (superset) filter — a
canonical hit whose forward k-mer has no forward occurrence simply
yields no candidates (docs/MAPPING.md discusses the strand contract).

Candidate generation groups surviving seeds by *diagonal*
(``position - read_offset``): seeds of the same alignment agree on the
diagonal up to the indel budget, so each ``(genome, diagonal)`` bucket
names one candidate reference window to verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..genomics import encoding
from ..genomics.sequence import DnaSequence


class SeedIndexError(ValueError):
    """Raised on invalid seed-index construction or lookup parameters."""


@dataclass(frozen=True)
class Candidate:
    """One ``(genome, diagonal)`` bucket of agreeing seed hits.

    ``diagonal`` is the reference start position a gap-free alignment
    of the full read would have (may be clamped to 0 by the window
    step for reads hanging off the genome's left edge); ``support`` is
    the number of distinct read k-mer offsets that voted for it.
    """

    genome_index: int
    diagonal: int
    support: int


class SeedIndex:
    """Exact k-mer -> (genome, position) occurrence index (CSR arrays)."""

    def __init__(
        self,
        k: int,
        genome_lengths: Tuple[int, ...],
        keys: np.ndarray,
        starts: np.ndarray,
        genomes: np.ndarray,
        positions: np.ndarray,
    ) -> None:
        self.k = k
        self.genome_lengths = genome_lengths
        self._keys = keys
        self._starts = starts
        self._genomes = genomes
        self._positions = positions

    @classmethod
    def from_genomes(
        cls, genomes: Sequence[DnaSequence], k: int
    ) -> "SeedIndex":
        """Index every k-mer occurrence of ``genomes`` (forward strand)."""
        if not 0 < k <= encoding.MAX_PACKED_K:
            raise SeedIndexError(
                f"seed length must be in [1, {encoding.MAX_PACKED_K}], got {k}"
            )
        if not genomes:
            raise SeedIndexError("at least one reference genome is required")
        key_parts: List[np.ndarray] = []
        genome_parts: List[np.ndarray] = []
        position_parts: List[np.ndarray] = []
        for genome_index, genome in enumerate(genomes):
            kmers = encoding.pack_kmers(genome.bases, k)
            if kmers.size == 0:
                continue
            key_parts.append(kmers)
            genome_parts.append(
                np.full(kmers.size, genome_index, dtype=np.int32)
            )
            position_parts.append(np.arange(kmers.size, dtype=np.int64))
        if not key_parts:
            raise SeedIndexError(
                f"no genome is long enough to contain a {k}-mer"
            )
        all_keys = np.concatenate(key_parts)
        all_genomes = np.concatenate(genome_parts)
        all_positions = np.concatenate(position_parts)
        # Stable sort on the key keeps same-k-mer occurrences in the
        # (genome, position) order they were emitted in above.
        order = np.argsort(all_keys, kind="stable")
        sorted_keys = all_keys[order]
        keys, starts_head = np.unique(sorted_keys, return_index=True)
        starts = np.concatenate(
            (starts_head.astype(np.int64), [sorted_keys.size])
        )
        return cls(
            k=k,
            genome_lengths=tuple(len(g.bases) for g in genomes),
            keys=keys,
            starts=starts,
            genomes=all_genomes[order],
            positions=all_positions[order],
        )

    def __len__(self) -> int:
        return int(self._keys.size)

    @property
    def occurrence_count(self) -> int:
        """Total indexed (genome, position) pairs."""
        return int(self._genomes.size)

    def __contains__(self, kmer: int) -> bool:
        i = int(np.searchsorted(self._keys, np.uint64(kmer)))
        return i < self._keys.size and int(self._keys[i]) == kmer

    def occurrences(self, kmer: int) -> List[Tuple[int, int]]:
        """All ``(genome_index, position)`` pairs of a packed k-mer."""
        i = int(np.searchsorted(self._keys, np.uint64(kmer)))
        if i >= self._keys.size or int(self._keys[i]) != kmer:
            return []
        lo, hi = int(self._starts[i]), int(self._starts[i + 1])
        return [
            (int(self._genomes[j]), int(self._positions[j]))
            for j in range(lo, hi)
        ]

    def candidates(
        self, seed_hits: Sequence[Tuple[int, int]]
    ) -> List[Candidate]:
        """Group surviving seeds into diagonal candidates.

        ``seed_hits`` is the filter's output: ``(read_offset, kmer)``
        pairs for every read k-mer the backend reported present.  Each
        occurrence votes for the diagonal ``position - read_offset``;
        buckets are returned sorted by descending support, then
        ``(genome_index, diagonal)`` ascending — a total order, so the
        downstream truncation to ``max_candidates`` is deterministic.
        """
        votes: Dict[Tuple[int, int], int] = {}
        for read_offset, kmer in seed_hits:
            for genome_index, position in self.occurrences(kmer):
                bucket = (genome_index, position - read_offset)
                votes[bucket] = votes.get(bucket, 0) + 1
        ranked = sorted(
            votes.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            Candidate(genome_index=g, diagonal=d, support=support)
            for (g, d), support in ranked
        ]


__all__ = ["Candidate", "SeedIndex", "SeedIndexError"]
