"""Seed-filter-and-extend read mapping over any :class:`QueryBackend`.

The pipeline (docs/MAPPING.md) has three stages:

1. **Filter** — the backend (scalar database, Sieve device, sharded
   service, multi-process cluster ... anything speaking
   :class:`repro.api.QueryBackend`) answers membership for every k-mer
   window of the read.  This is the stage Sieve accelerates; its
   answers are bit-identical across every backend, which is what makes
   mapping results bit-identical across the whole topology matrix.
2. **Seed** — surviving k-mers are resolved to reference locations by
   the host-side :class:`~repro.mapping.seeds.SeedIndex` and grouped
   into ``(genome, diagonal)`` candidates.
3. **Extend** — each candidate's reference window is verified by
   banded semi-global alignment
   (:func:`~repro.mapping.aligner.semiglobal_distance`); a candidate
   maps if its distance is within ``max_edits``.  The arithmetic is
   identical for both cost models — only the modelled price differs
   (:mod:`repro.mapping.cost`).

:meth:`SeedExtender.extend` is a *pure function* of the read and the
per-k-mer filter answers (plus the immutable index/config), so a
mapping result is reproducible from a classification trace alone and
identical whether extension runs inline, in the service dispatcher's
``_finish``, or in a fleet job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..api import BackendResult, QueryBackend
from ..genomics.sequence import DnaSequence
from .aligner import semiglobal_distance
from .cost import HostExtensionModel, InsituExtensionModel
from .seeds import SeedIndex

#: Extension cost-model spellings accepted by :class:`MappingConfig`.
EXTENSION_MODES = ("host", "insitu")


class MappingError(ValueError):
    """Raised on invalid mapping configuration or inputs."""


@dataclass(frozen=True)
class MappingConfig:
    """Extend-stage policy.

    ``band`` is the error budget: candidate windows get ``band`` slack
    on both sides and the aligner tolerates up to ``band`` diagonal
    drift, so any true location within ``max_edits <= band`` edits of
    a surviving seed's diagonal is found exactly (the property the
    hypothesis suite pins).  ``min_seed_hits`` and ``max_candidates``
    bound the extend fan-out per read; truncation order is the
    deterministic ranking of :meth:`SeedIndex.candidates`.
    """

    band: int = 3
    max_edits: int = 3
    min_seed_hits: int = 1
    max_candidates: int = 16
    extension: str = "host"

    def __post_init__(self) -> None:
        if self.band < 0:
            raise MappingError(f"band must be >= 0, got {self.band}")
        if not 0 <= self.max_edits <= self.band:
            raise MappingError(
                "max_edits must satisfy 0 <= max_edits <= band "
                f"(got max_edits={self.max_edits}, band={self.band}); a "
                "budget above the band would make banded verification "
                "inexact"
            )
        if self.min_seed_hits < 1:
            raise MappingError("min_seed_hits must be >= 1")
        if self.max_candidates < 1:
            raise MappingError("max_candidates must be >= 1")
        if self.extension not in EXTENSION_MODES:
            raise MappingError(
                f"extension must be one of {EXTENSION_MODES}, "
                f"got {self.extension!r}"
            )


@dataclass(frozen=True)
class MappingResult:
    """Outcome of mapping one read.

    ``locations`` lists every accepted placement ``(genome_index,
    position, edit_distance)`` in candidate-ranking order (bounded by
    ``max_candidates``); the headline fields describe the best one —
    minimal distance, ties broken by ``(genome_index, position)``.
    ``position`` is the candidate diagonal: the reference start a
    gap-free alignment would have.
    """

    read_id: str
    mapped: bool
    taxon_id: Optional[int]
    genome_index: Optional[int]
    position: Optional[int]
    edit_distance: Optional[int]
    kmers_total: int
    seed_hits: int
    candidates: int
    dp_cells: int
    locations: Tuple[Tuple[int, int, int], ...] = ()

    def to_payload(self) -> Dict[str, Any]:
        """JSON-stable dict (golden files, service responses, digests)."""
        return {
            "read_id": self.read_id,
            "mapped": self.mapped,
            "taxon_id": self.taxon_id,
            "genome_index": self.genome_index,
            "position": self.position,
            "edit_distance": self.edit_distance,
            "kmers_total": self.kmers_total,
            "seed_hits": self.seed_hits,
            "candidates": self.candidates,
            "dp_cells": self.dp_cells,
            "locations": [list(loc) for loc in self.locations],
        }


@dataclass
class MappingStats:
    """Extender-level counters (the cost model keeps the price)."""

    reads: int = 0
    mapped: int = 0
    seed_hits: int = 0
    candidates: int = 0
    dp_cells: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "reads": self.reads,
            "mapped": self.mapped,
            "seed_hits": self.seed_hits,
            "candidates": self.candidates,
            "dp_cells": self.dp_cells,
        }


def build_extension_model(config: MappingConfig):
    """Cost model for ``config.extension`` (answers are model-blind)."""
    if config.extension == "insitu":
        return InsituExtensionModel()
    return HostExtensionModel()


class SeedExtender:
    """Stages 2+3: resolve filter survivors to verified placements."""

    def __init__(
        self,
        seed_index: SeedIndex,
        genomes: Sequence[DnaSequence],
        config: Optional[MappingConfig] = None,
        cost_model: Any = None,
    ) -> None:
        if len(seed_index.genome_lengths) != len(genomes):
            raise MappingError(
                f"seed index covers {len(seed_index.genome_lengths)} "
                f"genomes but {len(genomes)} were supplied"
            )
        self.seed_index = seed_index
        self.genomes = tuple(genomes)
        self.config = config or MappingConfig()
        self.cost_model = cost_model or build_extension_model(self.config)
        self.stats = MappingStats()

    @property
    def k(self) -> int:
        return self.seed_index.k

    def extend(
        self, read: DnaSequence, results: Sequence[BackendResult]
    ) -> MappingResult:
        """Map one read from its per-k-mer filter answers (pure)."""
        expected = read.kmer_count(self.k)
        if len(results) != expected:
            raise MappingError(
                f"read {read.seq_id!r} has {expected} {self.k}-mers but "
                f"{len(results)} filter results were supplied"
            )
        cfg = self.config
        seed_hits = [
            (offset, int(result.query))
            for offset, result in enumerate(results)
            if result.hit
        ]
        ranked = [
            c
            for c in self.seed_index.candidates(seed_hits)
            if c.support >= cfg.min_seed_hits
        ][: cfg.max_candidates]

        accepted: List[Tuple[int, int, int]] = []
        dp_cells = 0
        for candidate in ranked:
            genome = self.genomes[candidate.genome_index]
            genome_len = len(genome.bases)
            window_start = min(
                max(candidate.diagonal - cfg.band, 0), genome_len
            )
            window_end = min(
                max(candidate.diagonal + len(read.bases) + cfg.band, 0),
                genome_len,
            )
            window = genome.bases[window_start:window_end]
            outcome = semiglobal_distance(read.bases, window)
            dp_cells += outcome.cells
            self.cost_model.charge(
                candidate.genome_index,
                window_start,
                len(window),
                outcome.cells,
            )
            if outcome.distance <= cfg.max_edits:
                accepted.append(
                    (
                        candidate.genome_index,
                        candidate.diagonal,
                        outcome.distance,
                    )
                )

        if accepted:
            best = min(accepted, key=lambda loc: (loc[2], loc[0], loc[1]))
            result = MappingResult(
                read_id=read.seq_id,
                mapped=True,
                taxon_id=self.genomes[best[0]].taxon_id,
                genome_index=best[0],
                position=best[1],
                edit_distance=best[2],
                kmers_total=expected,
                seed_hits=len(seed_hits),
                candidates=len(ranked),
                dp_cells=dp_cells,
                locations=tuple(accepted),
            )
        else:
            result = MappingResult(
                read_id=read.seq_id,
                mapped=False,
                taxon_id=None,
                genome_index=None,
                position=None,
                edit_distance=None,
                kmers_total=expected,
                seed_hits=len(seed_hits),
                candidates=len(ranked),
                dp_cells=dp_cells,
            )
        self.stats.reads += 1
        self.stats.mapped += int(result.mapped)
        self.stats.seed_hits += result.seed_hits
        self.stats.candidates += result.candidates
        self.stats.dp_cells += result.dp_cells
        return result

    def stats_dict(self) -> Dict[str, Any]:
        """Extender counters + the cost model's price, one payload."""
        payload: Dict[str, Any] = dict(self.stats.as_dict())
        payload["extension"] = self.cost_model.as_dict()
        return payload


class ReadMapper:
    """Stage 1 glue: drive a filter backend, then extend.

    Works with any :class:`QueryBackend`; the backend's ``k`` must
    match the seed index's (the filter and the index must agree on
    what a seed is).
    """

    def __init__(self, backend: QueryBackend, extender: SeedExtender) -> None:
        backend_k = backend.capabilities().k
        if backend_k != extender.k:
            raise MappingError(
                f"backend k={backend_k} does not match seed index "
                f"k={extender.k}"
            )
        self.backend = backend
        self.extender = extender

    def map_read(self, read: DnaSequence) -> MappingResult:
        results = self.backend.query(read.kmer_list(self.extender.k))
        return self.extender.extend(read, results)

    def map_reads(self, reads: Sequence[DnaSequence]) -> List[MappingResult]:
        return [self.map_read(read) for read in reads]


__all__ = [
    "EXTENSION_MODES",
    "MappingConfig",
    "MappingError",
    "MappingResult",
    "MappingStats",
    "ReadMapper",
    "SeedExtender",
    "build_extension_model",
]
