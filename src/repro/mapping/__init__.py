"""Read mapping on Sieve: seed-filter-and-extend (docs/MAPPING.md).

Any :class:`repro.api.QueryBackend` — the scalar database, the Sieve
device, the sharded service, the multi-process cluster — plays the
seed-location *filter* role that compute-in-memory hardware plays in
published read-mapping stacks; the host resolves surviving seeds to
reference locations and verifies them with banded semi-global
alignment, priced either analytically (host SIMD) or through the DRAM
ledger (in-situ extension).

Run ``python -m repro.mapping`` for a self-checking demo of the
mapping service request type over a cluster topology.
"""

from .aligner import (
    AlignmentError,
    SemiglobalResult,
    banded_edit_distance,
    edit_distance,
    semiglobal_distance,
)
from .cost import (
    ExtensionModelError,
    ExtensionStats,
    HostExtensionModel,
    HostExtensionParams,
    InsituExtensionModel,
    InsituExtensionParams,
)
from .pipeline import (
    EXTENSION_MODES,
    MappingConfig,
    MappingError,
    MappingResult,
    MappingStats,
    ReadMapper,
    SeedExtender,
    build_extension_model,
)
from .seeds import Candidate, SeedIndex, SeedIndexError

__all__ = [
    "AlignmentError",
    "Candidate",
    "EXTENSION_MODES",
    "ExtensionModelError",
    "ExtensionStats",
    "HostExtensionModel",
    "HostExtensionParams",
    "InsituExtensionModel",
    "InsituExtensionParams",
    "MappingConfig",
    "MappingError",
    "MappingResult",
    "MappingStats",
    "ReadMapper",
    "SeedExtender",
    "SeedIndex",
    "SeedIndexError",
    "SemiglobalResult",
    "banded_edit_distance",
    "build_extension_model",
    "edit_distance",
    "semiglobal_distance",
]
