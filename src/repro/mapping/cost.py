"""Extension cost models: host SIMD alignment vs in-situ extension.

The extend stage's *answers* never depend on where it runs — both
variants call the same :func:`repro.mapping.aligner.semiglobal_distance`
— only its *price* does.  Mirroring how :mod:`repro.baselines` prices
CPU k-mer lookups analytically while the Sieve device is priced through
the DRAM ledger:

* :class:`HostExtensionModel` — analytic, the
  :class:`repro.baselines.cpu_model.CpuModelParams` idiom: a calibrated
  per-DP-cell cost on a SIMD host (``cell_ns / lanes``) plus a fixed
  per-candidate overhead for the window gather, and energy from the
  workstation's matching power draw.
* :class:`InsituExtensionModel` — costed through a
  :class:`repro.dram.memsys.MemorySystem` ledger, the same open-page
  DDR4 model the paper's baseline-energy methodology replays traces
  against: each candidate streams its reference window's cache lines
  (deterministic addresses, so row-hit behaviour is reproducible) and
  then charges a per-cell in-DRAM operation time for the alignment
  recurrence, in the spirit of the PIM alignment frameworks in
  PAPERS.md.

Both keep running totals in :class:`ExtensionStats`; the mapping
service exposes them under ``stats()["mapping"]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..baselines.machines import XEON_E5_2658V4
from ..dram.memsys import MemorySystem


class ExtensionModelError(ValueError):
    """Raised on invalid extension cost-model parameters."""


@dataclass
class ExtensionStats:
    """Accumulated extend-stage work and its modelled price."""

    candidates: int = 0
    dp_cells: int = 0
    window_bytes: int = 0
    time_ns: float = 0.0
    energy_nj: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "candidates": float(self.candidates),
            "dp_cells": float(self.dp_cells),
            "window_bytes": float(self.window_bytes),
            "time_ns": self.time_ns,
            "energy_nj": self.energy_nj,
        }


@dataclass(frozen=True)
class HostExtensionParams:
    """Calibrated host-side banded-alignment constants.

    ``cell_ns`` is the amortized cost of one DP cell on one SIMD lane
    (striped/banded vectorized aligners sustain roughly one cell per
    lane-cycle); ``candidate_overhead_ns`` covers the window gather,
    band setup, and traceback bookkeeping per candidate.
    """

    cell_ns: float = 0.35
    lanes: float = 8.0
    candidate_overhead_ns: float = 150.0

    def __post_init__(self) -> None:
        if self.cell_ns <= 0 or self.lanes < 1.0:
            raise ExtensionModelError(
                "cell_ns must be positive and lanes >= 1"
            )
        if self.candidate_overhead_ns < 0:
            raise ExtensionModelError("overhead must be non-negative")


class HostExtensionModel:
    """Analytic host-side extension pricing (CPU-baseline idiom)."""

    name = "host"

    def __init__(self, params: Optional[HostExtensionParams] = None) -> None:
        self.params = params or HostExtensionParams()
        self.stats = ExtensionStats()

    def charge(
        self,
        genome_index: int,
        window_start: int,
        window_len: int,
        cells: int,
    ) -> None:
        """Account one verified candidate's alignment work."""
        p = self.params
        time_ns = cells * p.cell_ns / p.lanes + p.candidate_overhead_ns
        self.stats.candidates += 1
        self.stats.dp_cells += cells
        self.stats.window_bytes += window_len
        self.stats.time_ns += time_ns
        self.stats.energy_nj += (
            XEON_E5_2658V4.matching_power_w * time_ns
        )  # W x ns = nJ

    def stats_dict(self) -> Dict[str, float]:
        return self.as_dict()

    def as_dict(self) -> Dict[str, float]:
        payload = self.stats.as_dict()
        payload["model"] = self.name  # type: ignore[assignment]
        return payload


@dataclass(frozen=True)
class InsituExtensionParams:
    """In-situ extension constants.

    ``cell_op_ns`` prices one DP cell of bit-serial in-DRAM arithmetic
    (a handful of row activations per majority/add step, amortized over
    a row-wide vector of lanes); ``genome_stride_bytes`` spaces the
    genomes' reference images in the modelled address space so distinct
    genomes never share a DRAM row.
    """

    cell_op_ns: float = 0.9
    genome_stride_bytes: int = 1 << 28

    def __post_init__(self) -> None:
        if self.cell_op_ns <= 0:
            raise ExtensionModelError("cell_op_ns must be positive")
        if self.genome_stride_bytes <= 0:
            raise ExtensionModelError("genome stride must be positive")


class InsituExtensionModel:
    """Extension costed through the open-page DRAM ledger."""

    name = "insitu"

    def __init__(
        self,
        memsys: Optional[MemorySystem] = None,
        params: Optional[InsituExtensionParams] = None,
    ) -> None:
        self.memsys = memsys or MemorySystem()
        self.params = params or InsituExtensionParams()
        self.stats = ExtensionStats()

    def charge(
        self,
        genome_index: int,
        window_start: int,
        window_len: int,
        cells: int,
    ) -> None:
        """Stream the candidate window's lines, then pay per-cell ops.

        Addresses are a pure function of ``(genome_index,
        window_start, window_len)`` — 2 bits per base at a fixed
        per-genome stride — so the ledger's row-hit/miss/conflict
        sequence (and therefore the priced latency and energy) is
        deterministic for a given candidate schedule.
        """
        cfg = self.memsys.config
        base = genome_index * self.params.genome_stride_bytes
        first_byte = base + window_start // 4
        last_byte = base + (window_start + max(window_len, 1) - 1) // 4
        first_line = first_byte // cfg.line_bytes
        last_line = last_byte // cfg.line_bytes
        stream_ns = 0.0
        for line in range(first_line, last_line + 1):
            stream_ns += self.memsys.access(line * cfg.line_bytes)
        op_ns = cells * self.params.cell_op_ns
        self.stats.candidates += 1
        self.stats.dp_cells += cells
        self.stats.window_bytes += window_len
        self.stats.time_ns += stream_ns + op_ns
        # Burst/activation energy is accumulated by the ledger itself;
        # mirror the ledger total so one stats payload tells the story.
        self.stats.energy_nj = self.memsys.stats.energy_nj

    def stats_dict(self) -> Dict[str, float]:
        return self.as_dict()

    def as_dict(self) -> Dict[str, float]:
        payload = self.stats.as_dict()
        payload["model"] = self.name  # type: ignore[assignment]
        ledger = self.memsys.stats
        payload["ledger_accesses"] = float(ledger.accesses)
        payload["ledger_row_hit_rate"] = ledger.row_hit_rate
        return payload


__all__ = [
    "ExtensionModelError",
    "ExtensionStats",
    "HostExtensionModel",
    "HostExtensionParams",
    "InsituExtensionModel",
    "InsituExtensionParams",
]
