"""Vectorized banded edit-distance alignment for the extend stage.

Seed-filter-and-extend read mapping (docs/MAPPING.md) needs exactly
two alignment primitives, both Levenshtein-cost (unit substitutions and
indels — the substitution-heavy short-read regime the paper's Table II
profiles model, with indel tolerance so the band semantics are honest):

* :func:`banded_edit_distance` — *global* distance restricted to the
  diagonal band ``|i - j| <= band``.  Any alignment with at most
  ``band`` edits stays inside the band (each indel shifts the diagonal
  by one), so the banded value **equals** the unbanded distance
  whenever that distance is ``<= band``; a value that would exceed the
  band is reported as ``None`` ("more than ``band`` edits").  This is
  the property the hypothesis suite pins against a brute-force
  reference DP.
* :func:`semiglobal_distance` — the extension verifier: align the whole
  read against a reference *window* with free gaps at the window's
  ends (the read must be consumed end to end; the window is entered
  and left anywhere).  The candidate windows the seed stage produces
  are already clipped to ``read_length + 2 * band`` columns, so the
  window slack *is* the band.

Both run the DP one read-row at a time over numpy arrays.  The
insertion recurrence ``cur[j] = min(t[j], cur[j-1] + 1)`` — a serial
scan at first sight — is closed into one vector step by the min-plus
prefix identity::

    cur[j] = min_{i <= j} ( t[i] + (j - i) )
           = minimum.accumulate(t - arange)[j] + j

which is exact for unit indel cost.  The banded variant keeps rows in
band-offset coordinates (``d = j - i + band``), so its work per row is
``2 * band + 1`` cells, not ``n``.

Every entry point reports the number of DP cells it computed; the
mapping cost models (:mod:`repro.mapping.cost`) charge host or in-situ
time per cell from these counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


class AlignmentError(ValueError):
    """Raised on invalid alignment parameters."""


def _codes(s: str) -> np.ndarray:
    """Byte codes of a sequence string (comparison only, no decode)."""
    return np.frombuffer(s.encode("ascii"), dtype=np.uint8)


def edit_distance(a: str, b: str) -> int:
    """Unbanded Levenshtein distance (vectorized full DP).

    The unrestricted reference the banded variant collapses to when the
    band covers the true distance; also used directly by tests and the
    brute-force full-scan baseline.
    """
    m, n = len(a), len(b)
    if m == 0 or n == 0:
        return m + n
    a_codes = _codes(a)
    b_codes = _codes(b)
    idx = np.arange(n + 1, dtype=np.int64)
    prev = idx.copy()
    for i in range(1, m + 1):
        t = prev + 1
        t[1:] = np.minimum(t[1:], prev[:-1] + (b_codes != a_codes[i - 1]))
        prev = np.minimum.accumulate(t - idx) + idx
    return int(prev[n])


def banded_edit_distance(a: str, b: str, band: int) -> Optional[int]:
    """Levenshtein distance if it is ``<= band``, else ``None``.

    Restricting the DP to ``|i - j| <= band`` only discards alignments
    with more than ``band`` indels, and every alignment with at most
    ``band`` total edits satisfies the restriction — so the result is
    *exact* below the band and the band is a clean error budget, never
    an approximation knob.
    """
    if band < 0:
        raise AlignmentError(f"band must be >= 0, got {band}")
    m, n = len(a), len(b)
    if abs(m - n) > band:
        return None
    if m == 0 or n == 0:
        return m + n if m + n <= band else None
    a_codes = _codes(a)
    b_codes = _codes(b)
    width = 2 * band + 1
    offsets = np.arange(width, dtype=np.int64)
    inf = m + n + 1
    # Row 0 in offset coordinates: column j = d - band costs j inserts.
    j_row = offsets - band
    prev = np.where((j_row >= 0) & (j_row <= n), j_row, inf)
    for i in range(1, m + 1):
        j_row = i - band + offsets
        valid = (j_row >= 0) & (j_row <= n)
        # Substitution arrives from (i-1, j-1): the *same* offset d.
        j_sub = np.clip(j_row - 1, 0, n - 1)
        sub = prev + (b_codes[j_sub] != a_codes[i - 1])
        sub = np.where(j_row >= 1, sub, inf)
        # Deletion (consume a[i-1], j unchanged) arrives from offset d+1.
        dele = np.concatenate((prev[1:], [inf])) + 1
        t = np.minimum(sub, dele)
        t = np.where(valid, t, inf)
        # Insertion closure along the row (see module docstring).
        cur = np.minimum.accumulate(t - offsets) + offsets
        prev = np.where(valid, np.minimum(cur, inf), inf)
    distance = int(prev[n - m + band])
    return distance if distance <= band else None


@dataclass(frozen=True)
class SemiglobalResult:
    """Extension outcome: best distance over the window + DP work done."""

    distance: int
    cells: int


def semiglobal_distance(read: str, window: str) -> SemiglobalResult:
    """Best edit distance of ``read`` against any substring of ``window``.

    Semi-global ("glocal") alignment: the read is consumed end to end,
    the window contributes free leading/trailing gaps (row 0 is all
    zeros; the answer is the minimum of the last row).  This is the
    verification step of seed-and-extend — the window is the candidate
    neighbourhood a surviving seed's diagonal selects.
    """
    m, n = len(read), len(window)
    if m == 0:
        return SemiglobalResult(0, 0)
    if n == 0:
        return SemiglobalResult(m, 0)
    read_codes = _codes(read)
    window_codes = _codes(window)
    idx = np.arange(n + 1, dtype=np.int64)
    prev = np.zeros(n + 1, dtype=np.int64)
    for i in range(1, m + 1):
        t = prev + 1
        t[1:] = np.minimum(
            t[1:], prev[:-1] + (window_codes != read_codes[i - 1])
        )
        prev = np.minimum.accumulate(t - idx) + idx
    return SemiglobalResult(int(prev.min()), m * (n + 1))


__all__ = [
    "AlignmentError",
    "SemiglobalResult",
    "banded_edit_distance",
    "edit_distance",
    "semiglobal_distance",
]
