"""Benchmark: the Section I motivation scenario (10 TB NovaSeq sample)."""

from repro.experiments.intro_claims import intro_claims


def test_intro_claims(benchmark, report):
    result = benchmark(intro_claims)
    report(result, "intro_claims.txt")
    rows = {row[0]: row for row in result.rows}
    # The intro's point: CPU analysis lags sequencing...
    assert rows["CPU (Kraken-class)"][2] > 1.0
    # ...while Type-3 keeps pace with the instrument.
    assert rows["Sieve Type-3 (8SA)"][2] < 0.1
    # And uses far less energy than the CPU run.
    assert (
        rows["CPU (Kraken-class)"][3] / rows["Sieve Type-3 (8SA)"][3] > 20
    )
