"""Benchmark: regenerate paper Figure 1 (pipeline time breakdown)."""

from repro.experiments import fig01_breakdown


def test_fig01_breakdown(benchmark, report):
    result = benchmark(fig01_breakdown)
    report(result, "fig01_breakdown.txt")
    pct = dict(zip(result.column("tool"), result.column("kmer_matching_pct")))
    # Paper's claim: k-mer matching dominates every alignment-free tool.
    assert all(p > 70 for tool, p in pct.items() if tool != "BLASTN")
    assert pct["BLASTN"] > 30  # BLASTN splits time with word extension
