"""Ablation benchmarks for this reproduction's own design choices
(see DESIGN.md): steady-state rule, ETM distribution, power envelopes,
memory technology, and the Type-1 functional cross-check."""

import pytest

from repro.experiments.ablations import (
    ablation_device_sim,
    ablation_esp_model,
    ablation_power_envelope,
    ablation_steady_state,
    ablation_technology,
    ablation_type1_functional,
)


def test_abl_steady_state(benchmark, report):
    result = benchmark.pedantic(ablation_steady_state, rounds=1, iterations=1)
    report(result, "abl_steady_state.txt")
    for row in result.rows:
        assert row[3] == pytest.approx(1.0, abs=0.06)  # ratio


def test_abl_esp_model(benchmark, report):
    result = benchmark(ablation_esp_model)
    report(result, "abl_esp_model.txt")
    gains = dict(zip(result.column("esp_model"), result.column("etm_gain_vs_noETM")))
    assert 4.0 < gains["paper Fig-6 calibration"] < 8.0
    # Even the most pessimistic independence assumption keeps ETM useful.
    assert gains["max over 7168 random candidates"] > 2.0
    # More candidates -> later termination -> smaller gain.
    assert (
        gains["max over 7168 random candidates"]
        < gains["max over 32 random candidates"]
    )


def test_abl_power_envelope(benchmark, report):
    result = benchmark(ablation_power_envelope)
    report(result, "abl_power_envelope.txt")
    ceilings = dict(zip(result.column("envelope"), result.column("max_SA_per_bank")))
    # DIMM can feed fewer concurrent subarrays than a PCIe slot, and no
    # envelope feeds all 128 (the paper's Section VI-C caveat).
    assert ceilings["DDR4 DIMM slot"] < ceilings["PCIe x16 slot"] <= 128
    assert all(c < 128 for c in ceilings.values())
    # The paper's chosen 8 SA fits the PCIe envelope.
    assert ceilings["PCIe x16 slot"] >= 8


def test_abl_technology(benchmark, report):
    result = benchmark(ablation_technology)
    report(result, "abl_technology.txt")
    rows = {row[0].split()[0]: row for row in result.rows}
    # HBM: more banks -> much higher throughput per GB.
    assert rows["HBM2"][4] > 5 * rows["DDR4"][4]
    # NVM: largest capacity, slowest per GB.
    assert rows["NVM"][1] > rows["DDR4"][1]
    assert rows["NVM"][4] < rows["DDR4"][4]


def test_abl_device_sim(benchmark, report):
    result = benchmark.pedantic(
        ablation_device_sim, kwargs={"num_requests": 15_000},
        rounds=1, iterations=1,
    )
    report(result, "abl_device_sim.txt")
    for row in result.rows:
        assert 0.0 < row[1] < 7.0  # overhead percent
        assert row[2] < 1.15  # imbalance


def test_abl_type1_functional(benchmark, report):
    result = benchmark.pedantic(
        ablation_type1_functional, kwargs={"queries": 80}, rounds=1, iterations=1
    )
    report(result, "abl_type1_functional.txt")
    values = dict(zip(result.column("quantity"), result.column("value")))
    assert values["SkBR pruning factor"] > 3.0
    assert values["mean rows activated"] < values["max rows (2k + payload)"]
