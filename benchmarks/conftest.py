"""Benchmark-harness plumbing.

Every benchmark regenerates one paper table/figure: it times the runner
with pytest-benchmark, asserts the paper's qualitative shape, prints the
full table (visible with ``pytest -s`` or in captured output), and saves
it under ``benchmarks/output/`` so the rows survive the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def report(output_dir):
    """Print a FigureResult and persist it to benchmarks/output/."""

    def _report(result, filename: str) -> None:
        text = result.format()
        print()
        print(text)
        (output_dir / filename).write_text(text + "\n", encoding="utf-8")

    return _report
