"""Benchmark: regenerate paper Table II (query sequence summary)."""

import pytest

from repro.experiments import tab02_queries


def test_tab02_queries(benchmark, report):
    result = benchmark(tab02_queries)
    report(result, "tab02_queries.txt")
    kmers = dict(zip(result.column("query_file"), result.column("kmers")))
    assert kmers["MiSeq_Accuracy.fa"] == pytest.approx(1.27e6, rel=0.01)
    assert kmers["MiSeq_Timing.fa"] == pytest.approx(1.27e10, rel=0.01)
    assert kmers["simBA5_Timing.fa"] == pytest.approx(7.0e9, rel=0.01)
