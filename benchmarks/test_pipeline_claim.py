"""Benchmark: the Section V deployment-pipeline claim — k-mer matching
on Sieve limits the pipeline, so the host always keeps it fed."""

from repro.experiments import FigureResult, paper_benchmarks, perf_results_for
from repro.pipeline import pipeline_table


def _run() -> FigureResult:
    workload = paper_benchmarks()[-1].workload()
    rows = pipeline_table(perf_results_for(workload), workload)
    result = FigureResult(
        figure="Section V",
        title="Pipeline bottleneck analysis (pre / match / post)",
        headers=["engine", "matching_qps", "bottleneck", "sustained_qps",
                 "matching_utilization"],
    )
    for row in rows:
        result.rows.append(
            [row["engine"], row["matching_qps"], row["bottleneck"],
             row["sustained_qps"], row["matching_utilization"]]
        )
    result.notes = (
        "matching is the bottleneck stage for every Sieve design (the "
        "paper's Section V claim), with Type-3 'comparable to' the host "
        "stages and Types-1/2 far slower than them."
    )
    return result


def test_pipeline_claim(benchmark, report):
    result = benchmark(_run)
    report(result, "pipeline_claim.txt")
    rows = {row[0]: row for row in result.rows}
    for name in ("T1", "T2.16CB", "T3.8SA"):
        assert rows[name][2] == "matching"
        assert rows[name][4] == 1.0
