"""Benchmark: Section VI-C PCIe overhead + Section IV-C deployment."""

from repro.experiments import sensitivity_pcie


def test_sens_pcie(benchmark, report):
    result = benchmark(sensitivity_pcie)
    report(result, "sens_pcie.txt")
    rows = {row[0]: row for row in result.rows}
    # Paper: PCIe adds 4.6 %-6.7 % over ideal dispatch.
    for row in result.rows:
        assert 4.5 < row[3] < 6.8
    # Paper Section IV-C deployment table.
    assert rows["T1"][4] == "DIMM"
    assert rows["T2.16CB"][4] == "PCIe 3.0 x8"
    assert rows["T3.8SA"][4] == "PCIe 4.0 x16"
