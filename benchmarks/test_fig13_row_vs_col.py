"""Benchmark: regenerate paper Figure 13 (row-major in-situ vs. Sieve)."""

from repro.experiments import fig13_row_vs_col


def test_fig13_row_vs_col(benchmark, report):
    result = benchmark(fig13_row_vs_col)
    report(result, "fig13_row_vs_col.txt")
    for row in result.rows:
        _, row_major, col_major, cdram, sieve = row
        # Paper's ordering on every benchmark: Sieve > ComputeDRAM >
        # col-major(no ETM) >= row-major.
        assert sieve > cdram > col_major >= row_major * 0.99
        # ETM contribution in the paper's 5.2x-7.2x vicinity.
        assert 4.0 < sieve / col_major < 8.0
        # Row-major only "slightly worse" than col-major without ETM.
        assert col_major / row_major < 2.5
