"""Benchmark: regenerate paper Figure 17 (Type-2 compute-buffer sweep)."""

from repro.experiments import fig17_cb_sweep


def test_fig17_cb_sweep(benchmark, report):
    result = benchmark(fig17_cb_sweep)
    report(result, "fig17_cb_sweep.txt")
    rows = {row[0]: row for row in result.rows}
    # T2.1CB faster than T1 by the paper's 1.39x-1.94x (we allow a hair
    # of slack on both ends).
    ratio = rows["T2.1CB"][1] / rows["T1"][1]
    assert 1.3 < ratio < 2.1
    # Speedup and area both grow monotonically with compute buffers.
    cbs = [1, 2, 4, 8, 16, 32, 64, 128]
    speedups = [rows[f"T2.{n}CB"][1] for n in cbs]
    areas = [rows[f"T2.{n}CB"][3] for n in cbs]
    assert speedups == sorted(speedups)
    assert areas == sorted(areas)
    # T2.128CB slightly trails T3.1SA in performance and undercuts its area.
    assert 1.0 < rows["T3.1SA"][1] / rows["T2.128CB"][1] < 1.3
    assert rows["T2.128CB"][3] < rows["T3.1SA"][3]
