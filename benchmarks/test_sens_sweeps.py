"""Benchmarks: additional sensitivity sweeps implied by the paper's
claims (k length, hit rate, capacity scaling to 500 GB)."""

import pytest

from repro.experiments.sensitivity import (
    sensitivity_capacity,
    sensitivity_hit_rate,
    sensitivity_k,
)


def test_sens_k_sweep(benchmark, report):
    result = benchmark(sensitivity_k)
    report(result, "sens_k_sweep.txt")
    speedups = result.column("speedup_vs_cpu")
    # Speedup shrinks mildly with k but stays in the hundreds.
    assert speedups == sorted(speedups, reverse=True)
    assert all(s > 100 for s in speedups)
    assert speedups[0] / speedups[-1] < 2.0


def test_sens_hit_rate_sweep(benchmark, report):
    result = benchmark(sensitivity_hit_rate)
    report(result, "sens_hit_rate_sweep.txt")
    t3 = result.column("t3_8sa_speedup")
    # Monotone degradation, graceful floor: Sieve wins even at 100 % hits.
    assert t3 == sorted(t3, reverse=True)
    assert t3[-1] > 10.0


def test_sens_capacity_scaling(benchmark, report):
    result = benchmark(sensitivity_capacity)
    report(result, "sens_capacity_scaling.txt")
    gqps = result.column("Gqps")
    caps = result.column("capacity_gib")
    # Linear scaling: throughput ratio tracks capacity ratio.
    for (c0, q0), (c1, q1) in zip(zip(caps, gqps), zip(caps[1:], gqps[1:])):
        assert q1 / q0 == pytest.approx(c1 / c0, rel=0.02)
    # Index stays host-trivial even at 512 GB (a few MB).
    assert result.column("index_mb")[-1] < 10.0
