"""Benchmark: regenerate paper Table III (component energy/latency) and
the Section VI-A area-overhead numbers."""

import pytest

from repro.experiments import area_overheads, tab03_components


def test_tab03_components(benchmark, report):
    result = benchmark(tab03_components)
    report(result, "tab03_components.txt")
    rows = {row[0]: row for row in result.rows}
    assert rows["(T2/3) 8192-bit MA"][1] == pytest.approx(181.683)
    assert rows["(T2/3) ETM Segment"][3] == pytest.approx(43.653)
    # Every component must fit its timing budget: matchers/finders well
    # under a DRAM cycle, the ETM segment within a row cycle.
    for name, row in rows.items():
        budget = 50.0 if "ETM" in name else 1.0
        assert row[3] < budget, name


def test_area_overheads(benchmark, report):
    result = benchmark(area_overheads)
    report(result, "area_overheads.txt")
    for _, mine, paper in result.rows:
        assert mine == pytest.approx(paper, rel=0.16)
