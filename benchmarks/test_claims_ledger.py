"""Benchmark: the claims ledger — every checkable paper claim at once."""

from repro.experiments.claims import claims_ledger


def test_claims_ledger(benchmark, report):
    result = benchmark.pedantic(claims_ledger, rounds=1, iterations=1)
    report(result, "claims_ledger.txt")
    failures = [row[0] for row in result.rows if row[5] != "PASS"]
    assert not failures, f"claims outside their bands: {failures}"
    assert len(result.rows) >= 19
