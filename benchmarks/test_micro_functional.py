"""Microbenchmarks of the bit-accurate functional stack itself:
throughput of the matcher array, ETM pipeline, and full device lookups.

These do not correspond to a paper table; they exist so performance
regressions in the simulator (which gates how large the functional
experiments can run) are caught.
"""

import numpy as np
import pytest

from repro.genomics import build_dataset
from repro.sieve import EtmPipeline, MatcherArray, SieveDevice, SubarrayLayout


@pytest.fixture(scope="module")
def loaded_device():
    ds = build_dataset(
        k=15, num_species=4, genome_length=600, num_reads=40,
        read_length=80, novel_fraction=0.5, seed=5,
    )
    layout = SubarrayLayout(k=15, row_bits=1152, rows_per_subarray=256, layers=2)
    device = SieveDevice.from_database(ds.database, layout=layout)
    queries = [k for r in ds.reads for k in r.kmers(15)]
    return device, queries


def test_matcher_compare_throughput(benchmark):
    ma = MatcherArray(8192)
    ma.reset()
    row = np.random.default_rng(0).integers(0, 2, size=8192).astype(np.uint8)

    def step():
        ma.compare(row, 1)

    benchmark(step)


def test_etm_step_throughput(benchmark):
    etm = EtmPipeline(8192)
    latches = np.zeros(8192, dtype=np.uint8)
    latches[4000] = 1
    benchmark(etm.step, latches)


def test_device_lookup_throughput(benchmark, loaded_device):
    device, queries = loaded_device
    pool = queries[:64]
    state = {"i": 0}

    def lookup():
        q = pool[state["i"] % len(pool)]
        state["i"] += 1
        return device.lookup(q)

    benchmark(lookup)


def test_device_batch_throughput(benchmark, loaded_device):
    device, queries = loaded_device
    batch = queries[:128]
    benchmark.pedantic(device.lookup_many, args=(batch,), rounds=3, iterations=1)
