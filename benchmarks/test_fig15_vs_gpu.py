"""Benchmark: regenerate paper Figure 15 (Sieve designs vs. GPU)."""

from repro.experiments import fig15_vs_gpu


def test_fig15_vs_gpu(benchmark, report):
    result = benchmark(fig15_vs_gpu)
    report(result, "fig15_vs_gpu.txt")
    for row in result.rows:
        _, t1_s, t1_e, t2_s, t2_e, t3_s, t3_e = row
        # Paper: Type-1 is 3x-5x *slower* than the GPU but more energy
        # efficient; Type-2 modestly faster (2.59x-9.43x); Type-3
        # dramatically faster (33x-55x) and far more efficient
        # (83x-141x).
        assert t1_s < 1.0
        assert t1_e > 1.0
        assert 1.5 < t2_s < 12.0
        assert 10.0 < t3_s < 60.0
        assert 20.0 < t3_e < 200.0
