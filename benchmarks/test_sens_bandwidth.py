"""Benchmark: Section VI-B bandwidth what-if (more DRAM bandwidth does
not rescue the CPU baseline)."""

from repro.experiments import sensitivity_bandwidth


def test_sens_bandwidth(benchmark, report):
    result = benchmark(sensitivity_bandwidth)
    report(result, "sens_bandwidth.txt")
    values = dict(zip(result.column("quantity"), result.column("value")))
    # Paper: even an ideal machine (unbounded MSHRs, 40 ns loads) needs
    # more than 215 cores to match Type-3.
    assert values["cores needed to match Type-3"] > 215
    # And the real machine's MSHR-limited demand already saturates the
    # channel peak — bandwidth is not the binding resource.
    assert values["bandwidth utilization"] >= 0.99
