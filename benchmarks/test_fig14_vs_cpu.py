"""Benchmark: regenerate paper Figure 14 (Sieve designs vs. CPU)."""

from repro.experiments import fig14_vs_cpu, geomean


def test_fig14_vs_cpu(benchmark, report):
    result = benchmark(fig14_vs_cpu)
    report(result, "fig14_vs_cpu.txt")
    t1 = [row[1] for row in result.rows]
    t2 = [row[3] for row in result.rows]
    t3 = [row[5] for row in result.rows]
    # Paper bands: T1 1.01-3.8x, T2.16CB tens of x (3.74-76.62x for the
    # whole Type-2 family), T3.8SA hundreds of x (intro: 210x avg,
    # abstract: 326x avg, conclusion: up to 389x).
    assert all(1.0 < s < 10.0 for s in t1)
    assert all(10.0 < s < 80.0 for s in t2)
    assert all(100.0 < s < 450.0 for s in t3)
    assert 150.0 < geomean(t3) < 350.0
    # Energy savings ordering holds on every benchmark.
    for row in result.rows:
        assert row[2] < row[4] < row[6]
