"""Benchmark: regenerate paper Figure 6 (first-mismatch characterization).

Runs the bit-accurate functional device, so this is also the heaviest
exercise of the behavioral DRAM/matcher/ETM stack in the suite.
"""

from repro.experiments import fig06_esp


def test_fig06_esp(benchmark, report):
    result = benchmark.pedantic(
        fig06_esp, kwargs={"max_queries": 250}, rounds=1, iterations=1
    )
    report(result, "fig06_esp.txt")
    fractions = dict(zip(result.column("bits"), result.column("fraction")))
    # The overwhelming majority of comparisons resolve within 5 bases
    # (10 bits) — paper: 96.9 %.
    within = sum(f for bits, f in fractions.items() if bits <= 10)
    assert within > 0.9
