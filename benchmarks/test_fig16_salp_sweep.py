"""Benchmark: regenerate paper Figure 16 (subarray-level parallelism
sweep across device capacities)."""

import pytest

from repro.experiments import fig16_salp_sweep


def test_fig16_salp_sweep(benchmark, report):
    result = benchmark(fig16_salp_sweep)
    report(result, "fig16_salp_sweep.txt")
    for label in ("T3.4GB", "T3.8GB", "T3.16GB", "T3.32GB"):
        series = result.column(label)
        # Cycles decrease with more concurrent subarrays...
        assert all(a >= b - 1e-9 for a, b in zip(series, series[1:]))
        # ...and plateau after 8 subarrays (paper's observation).
        idx8 = 3  # rows are 1,2,4,8,16,...
        assert series[idx8 + 1] == pytest.approx(series[idx8], rel=0.02)
        assert series[-1] == pytest.approx(series[idx8], rel=0.02)
    # Throughput is memory-capacity-proportional: 4 GB needs ~8x the
    # cycles of 32 GB at every SALP level.
    four, thirty_two = result.column("T3.4GB"), result.column("T3.32GB")
    for a, b in zip(four, thirty_two):
        assert a == pytest.approx(8 * b, rel=0.02)
