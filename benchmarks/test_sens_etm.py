"""Benchmark: Section VI-C ETM sensitivity (adversarial all-hit, ETM off)."""

from repro.experiments import sensitivity_etm_off


def test_sens_etm_off(benchmark, report):
    result = benchmark(sensitivity_etm_off)
    report(result, "sens_etm_off.txt")
    for row in result.rows:
        _, design, cpu_s, cpu_e, gpu_s, gpu_e = row
        # Paper: Type-2/3 without ETM, every query a hit, remain
        # 1.34x-155x faster and 4.15x-36x more efficient than the CPU.
        assert cpu_s > 1.3
        assert cpu_e > 4.0
        if design.startswith("T3"):
            # Type-3 also stays ahead of the GPU.
            assert gpu_s > 1.3
