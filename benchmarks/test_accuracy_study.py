"""Benchmark: classification-quality study over the Table II accuracy
profiles (HiSeq / MiSeq / simBA-5), with majority and Kraken-LCA rules."""

from repro.experiments import accuracy_study


def test_accuracy_study(benchmark, report):
    result = benchmark.pedantic(
        accuracy_study, kwargs={"reads_per_profile": 50}, rounds=1, iterations=1
    )
    report(result, "accuracy_study.txt")
    rows = {row[0]: row for row in result.rows}
    # simBA-5's 5 % error rate collapses the k-mer hit rate...
    assert rows["simBA5_Accuracy.fa"][2] < rows["HiSeq_Accuracy.fa"][2]
    # ...yet classification accuracy survives on the remaining hits.
    for row in result.rows:
        assert row[4] > 0.8
        assert row[5] > 0.8
